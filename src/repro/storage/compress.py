"""Lightweight columnar compression: RLE, delta + bit-pack, dictionary-domain.

The vertically-partitioned scheme is the ideal compression target: every
``(subj, obj)`` table is sorted on SO and dictionary-coded, so its columns
are long sorted runs of dense integer oids.  This module provides the three
classic lightweight encodings column stores apply to exactly that shape:

* **RLE** (:class:`RleColumn`) — ``(value, run_length)`` pairs, 16 bytes per
  run.  Sorted columns collapse to one run per distinct value, and the
  run arrays double as an *operate-on-compressed* representation: a
  predicate is evaluated once per run, a merge join walks run boundaries,
  and a grouped count is just the run-length vector.
* **Delta + bit-pack** (:class:`DeltaColumn`) — mini-block
  frame-of-reference deltas: per 128-value block a full base value plus
  bit-packed ``delta - dmin``.  Mini-blocks keep random access O(block)
  instead of O(prefix).
* **Dictionary-domain bit-pack** (:class:`DictColumn`) — values are already
  dictionary oids, so ``value - min`` fits in ``bit_length(max - min)``
  bits; fixed-width packing keeps positional access exact.

:func:`choose_codec` sizes every candidate from one O(n) statistics pass
and picks the smallest (``None`` = raw stays best).  Encoded columns keep
the exact byte layout the simulated disk charges for, exposed through
``byte_ranges`` / ``pages_for_rows`` / ``probe_byte`` so the column-store
operators can account compressed I/O without materializing bytes.

Two cost modes (:class:`CompressionConfig`): ``"logical"`` sizes segments
at the uncompressed footprint, so every simulated charge is bit-identical
to the uncompressed path (the parity guarantee) while the compression
report still measures the footprint win; ``"physical"`` sizes segments at
the compressed footprint and lets the operators read compressed byte
ranges and run-skip — the mode whose simulated costs show the speedup.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.observe.race import guard_lock, shared_state

#: Uncompressed storage: one int64 per value.
VALUE_BYTES = 8

#: RLE storage: one (value, length) int64 pair per run.
RUN_BYTES = 16

#: Fixed per-column header (codec parameters: base/min + width).
HEADER_BYTES = 16

#: Delta mini-block length (values per block; one 8-byte base per block).
DELTA_BLOCK = 128

#: Widest bit-pack the codecs accept.  Anything wider risks int64 overflow
#: in range arithmetic and could not beat raw storage anyway.
MAX_PACK_WIDTH = 57

#: Codec priority when candidate sizes tie.
CODEC_ORDER = ("rle", "delta", "dict")

COST_MODES = ("logical", "physical")


@dataclass(frozen=True)
class CompressionConfig:
    """Column-store compression settings.

    ``cost_mode="logical"`` keeps simulated costs bit-identical to the
    uncompressed engine (segments are sized at the logical footprint);
    ``"physical"`` sizes segments compressed and enables the
    operate-on-compressed kernels.  ``codecs`` limits which encodings the
    picker may choose.
    """

    cost_mode: str = "logical"
    codecs: tuple = CODEC_ORDER

    def __post_init__(self):
        if self.cost_mode not in COST_MODES:
            raise StorageError(
                f"unknown compression cost mode {self.cost_mode!r}; "
                f"expected one of {COST_MODES}"
            )
        unknown = [c for c in self.codecs if c not in CODEC_ORDER]
        if unknown:
            raise StorageError(
                f"unknown codecs {unknown}; expected a subset of {CODEC_ORDER}"
            )

    @classmethod
    def coerce(cls, value):
        """Normalize user-facing compression settings to a config or None.

        Accepts ``None``/``False``/``"off"`` (disabled), ``True``/``"on"``/
        ``"physical"`` (physical cost mode), ``"logical"``, a settings
        dict, or an existing config.
        """
        if value is None or value is False:
            return None
        if isinstance(value, cls):
            return value
        if value is True:
            return cls(cost_mode="physical")
        if isinstance(value, str):
            mode = value.strip().lower()
            if mode in ("", "off", "none", "false", "0"):
                return None
            if mode in ("on", "true", "1", "physical"):
                return cls(cost_mode="physical")
            if mode == "logical":
                return cls(cost_mode="logical")
            raise StorageError(
                f"unknown compression setting {value!r}; expected "
                "off/logical/physical"
            )
        if isinstance(value, dict):
            return cls(**value)
        raise StorageError(
            f"cannot interpret compression setting {value!r}"
        )


# ---------------------------------------------------------------------------
# process-wide counters (perf-observatory style: plain ints under a lock)
# ---------------------------------------------------------------------------

_COMPRESS_STATS_LOCK = guard_lock("storage.compress.COMPRESS_STATS")
COMPRESS_STATS = shared_state(  # guarded-by: _COMPRESS_STATS_LOCK
    "storage.compress.COMPRESS_STATS",
    {
        "columns_compressed": 0,
        "columns_raw": 0,
        "logical_bytes": 0,
        "compressed_bytes": 0,
        "bytes_scanned": 0,
        "logical_bytes_scanned": 0,
        "runs_skipped": 0,
        "compressed_reads": 0,
    },
    _COMPRESS_STATS_LOCK,
)


def compress_stats():
    """Snapshot of the process-wide compression counters."""
    with _COMPRESS_STATS_LOCK:
        return dict(COMPRESS_STATS)


def reset_compress_stats():
    with _COMPRESS_STATS_LOCK:
        for key in COMPRESS_STATS:
            COMPRESS_STATS[key] = 0


def note_column(encoding, n_values):
    """Account one encoded (or raw-kept) column at table-build time."""
    logical = n_values * VALUE_BYTES
    with _COMPRESS_STATS_LOCK:
        COMPRESS_STATS["logical_bytes"] += logical
        if encoding is None:
            COMPRESS_STATS["columns_raw"] += 1
            COMPRESS_STATS["compressed_bytes"] += logical
        else:
            COMPRESS_STATS["columns_compressed"] += 1
            COMPRESS_STATS["compressed_bytes"] += encoding.nbytes


def note_scan(compressed_bytes, logical_bytes):
    """Account one compressed read (operators call this per fetch)."""
    with _COMPRESS_STATS_LOCK:
        COMPRESS_STATS["bytes_scanned"] += int(compressed_bytes)
        COMPRESS_STATS["logical_bytes_scanned"] += int(logical_bytes)
        COMPRESS_STATS["compressed_reads"] += 1


def note_runs_skipped(n):
    """Account rows whose per-row work collapsed into per-run work."""
    if n:
        with _COMPRESS_STATS_LOCK:
            COMPRESS_STATS["runs_skipped"] += int(n)


# ---------------------------------------------------------------------------
# bit packing
# ---------------------------------------------------------------------------

def packed_nbytes(n, width):
    """Bytes needed for *n* values at *width* bits each."""
    return (n * width + 7) // 8


def _pack_bits(unsigned, width):
    """Pack non-negative values (< 2**width) into a dense uint8 stream."""
    if width == 0 or len(unsigned) == 0:
        return np.empty(0, dtype=np.uint8)
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((unsigned[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1))


def _unpack_bits(packed, n, width):
    """Inverse of :func:`_pack_bits`; returns a uint64 array of length n."""
    if width == 0 or n == 0:
        return np.zeros(n, dtype=np.uint64)
    bits = np.unpackbits(packed, count=n * width).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return (bits.reshape(n, width) << shifts).sum(axis=1, dtype=np.uint64)


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

class RleColumn:
    """Run-length encoding: 16 bytes per maximal run.

    Beyond compression, the run arrays are the operate-on-compressed
    representation: ``run_values`` / ``run_lengths`` / ``run_starts`` let
    operators evaluate predicates per run, join on run boundaries, and
    count groups by summing lengths.
    """

    codec = "rle"

    __slots__ = ("n_values", "run_values", "run_lengths", "run_starts",
                 "nbytes")

    def __init__(self, values):
        values = np.ascontiguousarray(values, dtype=np.int64)
        n = len(values)
        if n:
            starts = np.flatnonzero(
                np.concatenate(([True], values[1:] != values[:-1]))
            ).astype(np.int64)
            ends = np.concatenate((starts[1:], [n])).astype(np.int64)
            self.run_values = values[starts].copy()
            self.run_lengths = ends - starts
            self.run_starts = starts
        else:
            self.run_values = np.empty(0, dtype=np.int64)
            self.run_lengths = np.empty(0, dtype=np.int64)
            self.run_starts = np.empty(0, dtype=np.int64)
        self.n_values = n
        self.nbytes = RUN_BYTES * len(self.run_starts)

    @property
    def n_runs(self):
        return len(self.run_starts)

    @property
    def logical_nbytes(self):
        return self.n_values * VALUE_BYTES

    def decode(self):
        return np.repeat(self.run_values, self.run_lengths)

    def run_index(self, row):
        """Index of the run containing *row*."""
        return int(
            np.searchsorted(self.run_starts, row, side="right") - 1
        )

    def probe_byte(self, row):
        """Byte offset a point probe of *row* touches."""
        return self.run_index(row) * RUN_BYTES

    def byte_ranges(self, lo, hi):
        """Contiguous byte ranges covering rows ``[lo, hi)``."""
        if hi <= lo or self.n_values == 0:
            return []
        first = self.run_index(lo)
        last = self.run_index(hi - 1)
        return [(first * RUN_BYTES, (last - first + 1) * RUN_BYTES)]

    def runs_overlapping(self, lo, hi):
        """``(values, counts)`` of the runs clipped to rows ``[lo, hi)``.

        ``np.repeat(values, counts)`` equals the decoded slice — the
        identity the run-at-a-time predicate kernels rely on.
        """
        if hi <= lo or self.n_values == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        first = self.run_index(lo)
        last = self.run_index(hi - 1)
        starts = np.maximum(self.run_starts[first:last + 1], lo)
        ends = np.minimum(
            self.run_starts[first:last + 1] + self.run_lengths[first:last + 1],
            hi,
        )
        return self.run_values[first:last + 1], ends - starts

    def pages_for_rows(self, positions, page_size):
        """Sorted unique page indices a positional fetch touches."""
        runs = np.searchsorted(self.run_starts, positions, side="right") - 1
        first = runs * RUN_BYTES // page_size
        last = (runs * RUN_BYTES + RUN_BYTES - 1) // page_size
        return np.unique(np.concatenate((first, last)))


class DeltaColumn:
    """Mini-block delta encoding with bit-packed residuals.

    Per :data:`DELTA_BLOCK` values: one full 8-byte base, then
    ``delta - dmin`` packed at a global width.  Block-local deltas mean
    decoding (and therefore positional access) touches one block, not the
    whole prefix.
    """

    codec = "delta"

    __slots__ = ("n_values", "dmin", "width", "bases", "nbytes", "_packed")

    def __init__(self, values):
        values = np.ascontiguousarray(values, dtype=np.int64)
        n = len(values)
        self.n_values = n
        self.bases = values[::DELTA_BLOCK].copy()
        deltas = np.zeros(n, dtype=np.int64)
        if n > 1:
            deltas[1:] = values[1:] - values[:-1]
        deltas[::DELTA_BLOCK] = 0
        self.dmin = int(deltas.min()) if n else 0
        spread = (int(deltas.max()) - self.dmin) if n else 0
        self.width = spread.bit_length()
        self._packed = _pack_bits(
            (deltas - self.dmin).astype(np.uint64), self.width
        )
        self.nbytes = (
            HEADER_BYTES + self.bases.nbytes + packed_nbytes(n, self.width)
        )

    @property
    def n_blocks(self):
        return len(self.bases)

    @property
    def logical_nbytes(self):
        return self.n_values * VALUE_BYTES

    def decode(self):
        n = self.n_values
        if n == 0:
            return np.empty(0, dtype=np.int64)
        deltas = _unpack_bits(self._packed, n, self.width).astype(np.int64)
        deltas += self.dmin
        deltas[::DELTA_BLOCK] = 0
        prefix = np.cumsum(deltas)
        block_starts = np.arange(0, n, DELTA_BLOCK, dtype=np.int64)
        lengths = np.diff(np.concatenate((block_starts, [n])))
        return prefix + np.repeat(self.bases - prefix[block_starts], lengths)

    def _packed_offset(self):
        return HEADER_BYTES + self.bases.nbytes

    def probe_byte(self, row):
        # A point probe lands on the row's block base entry.
        return HEADER_BYTES + (row // DELTA_BLOCK) * VALUE_BYTES

    def byte_ranges(self, lo, hi):
        if hi <= lo or self.n_values == 0:
            return []
        first_block = lo // DELTA_BLOCK
        last_block = (hi - 1) // DELTA_BLOCK
        ranges = [(
            HEADER_BYTES + first_block * VALUE_BYTES,
            (last_block - first_block + 1) * VALUE_BYTES,
        )]
        if self.width:
            packed0 = self._packed_offset()
            first_row = first_block * DELTA_BLOCK
            last_row = min((last_block + 1) * DELTA_BLOCK, self.n_values)
            start = packed0 + first_row * self.width // 8
            end = packed0 + (last_row * self.width + 7) // 8
            ranges.append((start, end - start))
        return ranges

    def pages_for_rows(self, positions, page_size):
        blocks = np.unique(positions // DELTA_BLOCK)
        parts = [(HEADER_BYTES + blocks * VALUE_BYTES) // page_size]
        if self.width:
            # A block's packed bytes (<= DELTA_BLOCK * MAX_PACK_WIDTH / 8)
            # span at most two pages: first and last byte cover the range.
            packed0 = self._packed_offset()
            first_rows = blocks * DELTA_BLOCK
            last_rows = np.minimum(
                (blocks + 1) * DELTA_BLOCK, self.n_values
            )
            parts.append(
                (packed0 + first_rows * self.width // 8) // page_size
            )
            parts.append(
                (packed0 + (last_rows * self.width + 7) // 8 - 1) // page_size
            )
        return np.unique(np.concatenate(parts))


class DictColumn:
    """Dictionary-domain bit-pack: fixed-width ``value - min``.

    Values are dictionary oids already, so the column's own value range is
    its domain; fixed width keeps positional byte offsets exact.
    """

    codec = "dict"

    __slots__ = ("n_values", "vmin", "width", "nbytes", "_packed")

    def __init__(self, values):
        values = np.ascontiguousarray(values, dtype=np.int64)
        n = len(values)
        self.n_values = n
        self.vmin = int(values.min()) if n else 0
        spread = (int(values.max()) - self.vmin) if n else 0
        self.width = spread.bit_length()
        self._packed = _pack_bits(
            (values - self.vmin).astype(np.uint64), self.width
        )
        self.nbytes = HEADER_BYTES + packed_nbytes(n, self.width)

    @property
    def logical_nbytes(self):
        return self.n_values * VALUE_BYTES

    def decode(self):
        unsigned = _unpack_bits(self._packed, self.n_values, self.width)
        return unsigned.astype(np.int64) + self.vmin

    def probe_byte(self, row):
        return HEADER_BYTES + row * self.width // 8

    def byte_ranges(self, lo, hi):
        if hi <= lo or self.n_values == 0:
            return []
        if self.width == 0:
            return [(0, HEADER_BYTES)]
        start = HEADER_BYTES + lo * self.width // 8
        end = HEADER_BYTES + (hi * self.width + 7) // 8
        return [(start, end - start)]

    def pages_for_rows(self, positions, page_size):
        if self.width == 0:
            return np.zeros(1, dtype=np.int64)
        first = (HEADER_BYTES + positions * self.width // 8) // page_size
        last = (
            HEADER_BYTES + ((positions + 1) * self.width + 7) // 8 - 1
        ) // page_size
        return np.unique(np.concatenate((first, last)))


_CODEC_CLASSES = {
    "rle": RleColumn,
    "delta": DeltaColumn,
    "dict": DictColumn,
}


# ---------------------------------------------------------------------------
# stats-driven picker
# ---------------------------------------------------------------------------

def column_stats(values):
    """One O(n) pass over a column: everything the picker needs.

    Returns ``n``, ``n_runs``, value min/max, and the candidate codec
    sizes in bytes (absent when a codec is ineligible, e.g. a value range
    too wide to bit-pack safely).
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = len(values)
    stats = {"n": n, "raw_bytes": n * VALUE_BYTES, "sizes": {}}
    if n == 0:
        stats.update({"n_runs": 0, "vmin": 0, "vmax": 0})
        return stats
    vmin = int(values.min())
    vmax = int(values.max())
    if n > 1:
        changes = values[1:] != values[:-1]
        n_runs = 1 + int(np.count_nonzero(changes))
    else:
        n_runs = 1
    stats.update({"n_runs": n_runs, "vmin": vmin, "vmax": vmax})
    sizes = stats["sizes"]
    sizes["rle"] = RUN_BYTES * n_runs
    spread = vmax - vmin
    if spread.bit_length() <= MAX_PACK_WIDTH:
        sizes["dict"] = HEADER_BYTES + packed_nbytes(n, spread.bit_length())
    if spread < 2 ** 62:  # deltas cannot overflow int64
        deltas = np.zeros(n, dtype=np.int64)
        if n > 1:
            deltas[1:] = values[1:] - values[:-1]
        deltas[::DELTA_BLOCK] = 0
        dwidth = (int(deltas.max()) - int(deltas.min())).bit_length()
        if dwidth <= MAX_PACK_WIDTH:
            n_blocks = (n + DELTA_BLOCK - 1) // DELTA_BLOCK
            sizes["delta"] = (
                HEADER_BYTES + n_blocks * VALUE_BYTES
                + packed_nbytes(n, dwidth)
            )
    return stats


def choose_codec(values, config=None):
    """Encode *values* with the smallest eligible codec, or ``None``.

    ``None`` means raw storage wins (or the column is empty) — the table
    keeps the plain int64 segment.  Ties resolve in :data:`CODEC_ORDER`.
    """
    config = config or CompressionConfig()
    stats = column_stats(values)
    if stats["n"] == 0:
        return None
    best_name = None
    best_size = stats["raw_bytes"]
    for name in CODEC_ORDER:
        if name not in config.codecs:
            continue
        size = stats["sizes"].get(name)
        if size is not None and size < best_size:
            best_name, best_size = name, size
    if best_name is None:
        return None
    return _CODEC_CLASSES[best_name](values)
