"""EXTENSION — incremental maintenance of deployed storage schemes.

The benchmark is read-only by convention (Section 2.3), but the paper makes
a structural point about updates: "in case of an update in properties, the
queries have to be re-produced.  Here holds the general observation that
data-driven logical schemes make queries susceptible to updates"
(Section 4.2).  This module makes that observation executable:

* inserting triples into a **triple-store** rebuilds one table (a bulk
  merge into the clustered order) and never changes the logical schema,
* inserting into a **vertically-partitioned** store rebuilds only the
  affected property tables — but a triple with a *previously unseen
  property* requires ``CREATE TABLE`` and invalidates every generated
  query that iterates the property list (the q2*/q3*/q4*/q6*/q8 family).

Physical rebuild is how column stores actually absorb bulk appends
(write-optimized deltas merged into the read-optimized store); the
:class:`MaintenanceReport` accounts what had to be rewritten so the cost
asymmetry between the schemes is measurable.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.dictionary import Dictionary
from repro.errors import StorageError
from repro.storage.catalog import clustering_columns
from repro.storage.encoding import is_order_preserving


@dataclass
class MaintenanceReport:
    """What one batch insert did to the physical store."""

    n_triples: int
    tables_rebuilt: list = field(default_factory=list)
    tables_created: list = field(default_factory=list)
    bytes_rewritten: int = 0
    new_properties: list = field(default_factory=list)
    #: New strings got appended oids that broke the order-preserving
    #: dictionary assignment; range predicates on encoded columns need a
    #: dictionary rebuild.
    needs_reorganization: bool = False

    @property
    def schema_changed(self):
        """Did the logical schema change (new tables appear)?"""
        return bool(self.tables_created)

    @property
    def plans_invalidated(self):
        """Must generated all-property queries be re-produced?

        True exactly when the logical schema grew: every
        vertically-partitioned query that iterates the property tables in
        its FROM clause is now incomplete (the paper's Section 4.2 point).
        A triple-store absorbs new properties without schema change, so its
        queries never go stale.
        """
        return self.schema_changed


def insert_triples(engine, catalog, triples):
    """Insert *triples* into a deployed scheme; returns
    ``(new_catalog, MaintenanceReport)``.

    The catalog is replaced (its dictionary may have grown and, for the
    vertical scheme, its table map may have gained entries); the engine is
    updated in place.
    """
    triples = list(triples)
    if catalog.is_triple_store():
        return _insert_triple_store(engine, catalog, triples)
    if catalog.is_vertical():
        return _insert_vertical(engine, catalog, triples)
    raise StorageError(
        f"incremental maintenance not implemented for scheme "
        f"{catalog.scheme!r}"
    )


def _thaw(frozen):
    """Rebuild a mutable dictionary preserving every existing oid."""
    dictionary = Dictionary(frozen)
    dictionary.needs_reorganization = bool(
        getattr(frozen, "needs_reorganization", False)
    )
    return dictionary


def _note_order_breakage(dictionary, report):
    """Flag the dictionary/report when appended oids broke oid order."""
    if dictionary.needs_reorganization or not is_order_preserving(dictionary):
        dictionary.needs_reorganization = True
        report.needs_reorganization = True


def _replace_table(engine, name, columns, sort_by, indexes):
    if engine.has_table(name):
        engine.drop_table(name)
    table = engine.create_table(name, columns, sort_by=sort_by, indexes=indexes)
    return table


def _insert_triple_store(engine, catalog, triples):
    import dataclasses

    dictionary = _thaw(catalog.dictionary)
    report = MaintenanceReport(n_triples=len(triples))

    table = engine.table(catalog.triples_table)
    old_properties = set(catalog.all_properties)

    if engine.kind == "column-store":
        subj = table.array("subj")
        prop = table.array("prop")
        obj = table.array("obj")
        rows = list(zip(subj.tolist(), prop.tolist(), obj.tolist()))
    else:
        position = {c: i for i, c in enumerate(table.columns)}
        rows = [
            (r[position["subj"]], r[position["prop"]], r[position["obj"]])
            for r in table.rows
        ]
    for t in triples:
        rows.append(
            (
                dictionary.encode(t.s),
                dictionary.encode(t.p),
                dictionary.encode(t.o),
            )
        )
        if t.p not in old_properties:
            old_properties.add(t.p)
            report.new_properties.append(t.p)

    columns = {
        "subj": np.asarray([r[0] for r in rows], dtype=np.int64),
        "prop": np.asarray([r[1] for r in rows], dtype=np.int64),
        "obj": np.asarray([r[2] for r in rows], dtype=np.int64),
    }
    sort_by = list(clustering_columns(catalog.clustering))
    indexes = _existing_index_specs(engine, table)
    new_table = _replace_table(
        engine, catalog.triples_table, columns, sort_by, indexes
    )
    report.tables_rebuilt.append(catalog.triples_table)
    report.bytes_rewritten += _table_bytes(new_table)
    # New properties extend the vocabulary but NOT the schema: the
    # triple-store's queries never enumerate properties.
    report.new_properties = sorted(
        set(report.new_properties)
    )
    _note_order_breakage(dictionary, report)
    new_catalog = dataclasses.replace(
        catalog,
        dictionary=dictionary.freeze(),
        all_properties=_ranked_properties_triple(columns, dictionary),
    )
    return new_catalog, report


def _insert_vertical(engine, catalog, triples):
    import dataclasses

    dictionary = _thaw(catalog.dictionary)
    report = MaintenanceReport(n_triples=len(triples))

    by_property = {}
    for t in triples:
        by_property.setdefault(t.p, []).append(
            (dictionary.encode(t.s), dictionary.encode(t.o))
        )

    property_tables = dict(catalog.property_tables)
    with_indexes = engine.kind == "row-store"
    for prop_name, pairs in by_property.items():
        table_name = property_tables.get(prop_name)
        existing = []
        if table_name is None:
            # The data-driven schema grows: CREATE TABLE, and every
            # generated all-property query is now stale.
            oid = dictionary.encode(prop_name)
            table_name = f"vp_{oid}"
            property_tables[prop_name] = table_name
            report.tables_created.append(table_name)
            report.new_properties.append(prop_name)
        else:
            table = engine.table(table_name)
            if engine.kind == "column-store":
                existing = list(
                    zip(
                        table.array("subj").tolist(),
                        table.array("obj").tolist(),
                    )
                )
            else:
                existing = [(r[0], r[1]) for r in table.rows]
            report.tables_rebuilt.append(table_name)
        rows = existing + pairs
        indexes = None
        if with_indexes:
            indexes = [
                {"name": f"{table_name}_os", "columns": ["obj", "subj"]}
            ]
        new_table = _replace_table(
            engine,
            table_name,
            {
                "subj": np.asarray([r[0] for r in rows], dtype=np.int64),
                "obj": np.asarray([r[1] for r in rows], dtype=np.int64),
            },
            ["subj", "obj"],
            indexes,
        )
        report.bytes_rewritten += _table_bytes(new_table)

    counts = {
        p: engine.table(t).n_rows for p, t in property_tables.items()
    }
    _note_order_breakage(dictionary, report)
    new_catalog = dataclasses.replace(
        catalog,
        dictionary=dictionary.freeze(),
        property_tables=property_tables,
        all_properties=sorted(counts, key=lambda p: (-counts[p], p)),
    )
    report.new_properties.sort()
    return new_catalog, report


def _existing_index_specs(engine, table):
    if engine.kind != "row-store":
        return None
    return [
        {"name": index.name, "columns": list(index.key_columns)}
        for index in table.secondary_indexes()
    ]


def _table_bytes(table):
    if hasattr(table, "bytes_on_disk"):
        return table.bytes_on_disk()
    return 0


def _ranked_properties_triple(columns, dictionary):
    from collections import Counter

    counts = Counter(columns["prop"].tolist())
    return sorted(
        (dictionary.decode(p) for p in counts),
        key=lambda name: (-counts[dictionary.lookup(name)], name),
    )
