"""RDF storage schemes: triple-store and vertically-partitioned.

The two physical organizations the paper compares (Sections 4.1, 4.2):

* **Triple-store** — one ``triples(subj, prop, obj)`` table.  The physical
  design choice is the clustering order: the original VLDB 2007 paper used
  SPO (plus unclustered POS/OSP); this paper shows PSO — the closest
  equivalent of the vertically-partitioned clustering — is decisively
  better.  A small ``properties`` table holds the 28 "interesting"
  properties used to filter q2/q3/q4/q6.
* **Vertically-partitioned** — one two-column ``(subj, obj)`` table per
  property, sorted/clustered on SO (plus an unclustered OS index on the row
  store).

Builders deploy a scheme into any engine exposing ``create_table`` and
return a :class:`~repro.storage.catalog.StoreCatalog` describing what was
created; the query builders in :mod:`repro.queries` consume the catalog.
"""

from repro.storage.catalog import StoreCatalog, CLUSTERINGS
from repro.storage.compress import (
    CompressionConfig,
    choose_codec,
    compress_stats,
    reset_compress_stats,
)
from repro.storage.payload import build_store_from_payload
from repro.storage.triple_store import (
    build_triple_store,
    prepare_triple_payload,
)
from repro.storage.vertical_store import (
    build_vertical_store,
    prepare_vertical_payload,
)
from repro.storage.property_table import build_property_table_store
from repro.storage.maintenance import insert_triples, MaintenanceReport

__all__ = [
    "StoreCatalog",
    "CLUSTERINGS",
    "CompressionConfig",
    "choose_codec",
    "compress_stats",
    "reset_compress_stats",
    "build_store_from_payload",
    "build_triple_store",
    "build_vertical_store",
    "prepare_triple_payload",
    "prepare_vertical_payload",
    "build_property_table_store",
    "insert_triples",
    "MaintenanceReport",
]
