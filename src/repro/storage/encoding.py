"""Order-preserving dictionary construction.

Column stores commonly build *order-preserving* dictionary encodings: oids
are assigned in lexicographic string order, so integer comparisons on
encoded columns realize string comparisons — range predicates and ORDER BY
work directly on the encoded data.

Storage-scheme builders call :func:`order_preserving_dictionary` before
encoding, pre-interning the dataset's whole vocabulary in sorted order.
Strings interned *later* (incremental maintenance) get appended oids and
break the property until the next reorganization — exactly the trade-off
real systems make.
"""

from repro.dictionary import Dictionary


def order_preserving_dictionary(triples, dictionary=None):
    """Pre-intern every string of *triples* in lexicographic order.

    When *dictionary* is a fresh (or empty) dictionary, the resulting oids
    are order-isomorphic to the strings.  A non-empty dictionary is
    extended with the new strings in sorted order (best effort; global
    order preservation only holds if the existing contents already respect
    it).
    """
    if dictionary is None:
        dictionary = Dictionary()
    vocabulary = set()
    add = vocabulary.add
    for t in triples:
        add(t.s)
        add(t.p)
        add(t.o)
    dictionary.encode_many(sorted(vocabulary))
    return dictionary


def is_order_preserving(dictionary):
    """True when oid order equals lexicographic string order."""
    strings = list(dictionary)
    return strings == sorted(strings)
