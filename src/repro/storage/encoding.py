"""Order-preserving dictionary construction.

Column stores commonly build *order-preserving* dictionary encodings: oids
are assigned in lexicographic string order, so integer comparisons on
encoded columns realize string comparisons — range predicates and ORDER BY
work directly on the encoded data.

Storage-scheme builders call :func:`order_preserving_dictionary` before
encoding, pre-interning the dataset's whole vocabulary in sorted order.
Strings interned *later* (incremental maintenance) get appended oids and
break the property until the next reorganization — exactly the trade-off
real systems make.  When that happens the dictionary is flagged
``needs_reorganization`` and an :class:`OrderPreservationWarning` is
emitted, so the maintenance layer can schedule a rebuild instead of
silently serving wrong range semantics.
"""

import warnings

from repro.dictionary import Dictionary


class OrderPreservationWarning(UserWarning):
    """Extending a dictionary broke its order-preserving oid assignment."""


def order_preserving_dictionary(triples, dictionary=None):
    """Pre-intern every string of *triples* in lexicographic order.

    When *dictionary* is a fresh (or empty) dictionary, the resulting oids
    are order-isomorphic to the strings.  A non-empty dictionary is
    extended with the new strings in sorted order; if any new string sorts
    below an existing one, the appended oids break global order
    preservation — the dictionary is flagged ``needs_reorganization`` and
    an :class:`OrderPreservationWarning` is emitted.
    """
    if dictionary is None:
        dictionary = Dictionary()
    was_empty = len(dictionary) == 0
    vocabulary = set()
    add = vocabulary.add
    for t in triples:
        add(t.s)
        add(t.p)
        add(t.o)
    dictionary.encode_many(sorted(vocabulary))
    if not was_empty and not is_order_preserving(dictionary):
        dictionary.needs_reorganization = True
        warnings.warn(
            "extending a non-empty dictionary broke order preservation; "
            "range predicates on encoded columns need a dictionary "
            "reorganization to stay correct",
            OrderPreservationWarning,
            stacklevel=2,
        )
    return dictionary


def is_order_preserving(dictionary):
    """True when oid order equals lexicographic string order."""
    strings = list(dictionary)
    return strings == sorted(strings)
