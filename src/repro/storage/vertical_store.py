"""Deploy the vertically-partitioned scheme into an engine.

One two-column ``(subj, obj)`` table per distinct property, data sorted on
(subject, object).  On the row store each table additionally gets a
clustered B+tree on SO and an unclustered B+tree on OS (paper, Section 4.2).
For the Barton-like data set "this calls for 222 tables, many with just a
small number of rows (less than 10)".
"""

import numpy as np

from repro.storage.encoding import order_preserving_dictionary
from repro.storage.payload import (
    build_store_from_payload,
    store_payload,
    table_entry,
)


def build_vertical_store(engine, triples, interesting_properties,
                         dictionary=None, with_indexes=None,
                         with_properties_table=True):
    """Create per-property tables inside *engine*; returns a StoreCatalog."""
    if with_indexes is None:
        with_indexes = engine.kind == "row-store"
    payload = prepare_vertical_payload(
        triples, interesting_properties, dictionary=dictionary,
        with_indexes=with_indexes,
        with_properties_table=with_properties_table,
    )
    return build_store_from_payload(engine, payload)


def prepare_vertical_payload(triples, interesting_properties,
                             dictionary=None, with_indexes=False,
                             with_properties_table=True):
    """Prepare the vertically-partitioned design without an engine.

    Returns a picklable payload (see :mod:`repro.storage.payload`) carrying
    one pre-sorted ``(subj, obj)`` table per property, for the artifact
    cache to persist between benchmark runs.
    """
    triples = list(triples)
    dictionary = order_preserving_dictionary(triples, dictionary)

    # Encode column-at-a-time, then find every property group with a single
    # stable argsort over the property oids: each group is one contiguous
    # run of the sorted order, with the triples' original relative order
    # preserved inside it (stable sort).
    n = len(triples)
    p_list = [t.p for t in triples]
    subjects = np.fromiter(
        dictionary.encode_many([t.s for t in triples]), dtype=np.int64, count=n
    )
    p_oids = np.fromiter(
        dictionary.encode_many(p_list), dtype=np.int64, count=n
    )
    objects = np.fromiter(
        dictionary.encode_many([t.o for t in triples]), dtype=np.int64, count=n
    )
    order = np.argsort(p_oids, kind="stable")
    sorted_p = p_oids[order]
    if n:
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_p[1:] != sorted_p[:-1]))
        )
        ends = np.concatenate((starts[1:], [n]))
        runs = {
            int(sorted_p[s]): (int(s), int(e)) for s, e in zip(starts, ends)
        }
    else:
        runs = {}

    tables = []
    property_tables = {}
    property_counts = {}
    # dict.fromkeys keeps first-seen property order, matching the table
    # creation order of the per-triple loop this replaces.
    for p_name in dict.fromkeys(p_list):
        oid = dictionary.lookup(p_name)
        start, end = runs[oid]
        property_counts[p_name] = end - start
        members = order[start:end]
        table_name = f"vp_{oid}"
        indexes = None
        if with_indexes:
            indexes = [{"name": f"{table_name}_os", "columns": ["obj", "subj"]}]
        tables.append(table_entry(
            table_name,
            {"subj": subjects[members], "obj": objects[members]},
            ["subj", "obj"],
            indexes,
        ))
        property_tables[p_name] = table_name

    properties_table = None
    if with_properties_table:
        oids = np.asarray(
            [dictionary.encode(p) for p in interesting_properties],
            dtype=np.int64,
        )
        tables.append(table_entry(
            "properties", {"prop": oids}, ["prop"],
            [] if with_indexes else None,
        ))
        properties_table = "properties"

    all_properties = sorted(
        property_counts, key=lambda p: (-property_counts[p], p)
    )
    return store_payload(
        dictionary,
        tables,
        scheme="vertical",
        clustering="SO",
        interesting_properties=list(interesting_properties),
        all_properties=all_properties,
        properties_table=properties_table,
        property_tables=property_tables,
    )
