"""Deploy the vertically-partitioned scheme into an engine.

One two-column ``(subj, obj)`` table per distinct property, data sorted on
(subject, object).  On the row store each table additionally gets a
clustered B+tree on SO and an unclustered B+tree on OS (paper, Section 4.2).
For the Barton-like data set "this calls for 222 tables, many with just a
small number of rows (less than 10)".
"""

import numpy as np

from repro.dictionary import Dictionary
from repro.storage.encoding import order_preserving_dictionary
from repro.storage.catalog import StoreCatalog


def build_vertical_store(engine, triples, interesting_properties,
                         dictionary=None, with_indexes=None,
                         with_properties_table=True):
    """Create per-property tables inside *engine*; returns a StoreCatalog."""
    triples = list(triples)
    dictionary = order_preserving_dictionary(triples, dictionary)
    if with_indexes is None:
        with_indexes = engine.kind == "row-store"

    groups = {}
    property_counts = {}
    for t in triples:
        s = dictionary.encode(t.s)
        p_name = t.p
        o = dictionary.encode(t.o)
        dictionary.encode(p_name)
        groups.setdefault(p_name, ([], []))
        pair = groups[p_name]
        pair[0].append(s)
        pair[1].append(o)
        property_counts[p_name] = property_counts.get(p_name, 0) + 1

    property_tables = {}
    for p_name, (subjects, objects) in groups.items():
        oid = dictionary.lookup(p_name)
        table_name = f"vp_{oid}"
        indexes = None
        if with_indexes:
            indexes = [{"name": f"{table_name}_os", "columns": ["obj", "subj"]}]
        engine.create_table(
            table_name,
            {
                "subj": np.asarray(subjects, dtype=np.int64),
                "obj": np.asarray(objects, dtype=np.int64),
            },
            sort_by=["subj", "obj"],
            indexes=indexes,
        )
        property_tables[p_name] = table_name

    properties_table = None
    if with_properties_table:
        oids = np.asarray(
            [dictionary.encode(p) for p in interesting_properties],
            dtype=np.int64,
        )
        engine.create_table(
            "properties",
            {"prop": oids},
            sort_by=["prop"],
            indexes=[] if with_indexes else None,
        )
        properties_table = "properties"

    all_properties = sorted(
        property_counts, key=lambda p: (-property_counts[p], p)
    )
    return StoreCatalog(
        scheme="vertical",
        clustering="SO",
        dictionary=dictionary.freeze(),
        interesting_properties=list(interesting_properties),
        all_properties=all_properties,
        properties_table=properties_table,
        property_tables=property_tables,
    )
