"""The paper's appendix SQL, verbatim modulo constant spelling.

The appendix writes constants in typographic quotes (``‘<type>’``); here
they are ordinary single-quoted SQL strings whose contents are the exact
dictionary keys the data loader uses.  As in the paper, the queries are
written against the triple-store schema; the vertically-partitioned SQL is
*generated* from these texts (see :mod:`repro.sql.generator`).
"""

APPENDIX_SQL = {
    "q1": """
        SELECT A.obj, count(*)
        FROM triples AS A
        WHERE A.prop = '<type>'
        GROUP BY A.obj
    """,
    "q2": """
        SELECT B.prop, count(*)
        FROM triples AS A, triples AS B,
             properties P
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
          AND P.prop = B.prop
        GROUP BY B.prop
    """,
    "q2*": """
        SELECT B.prop, count(*)
        FROM triples AS A, triples AS B
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
        GROUP BY B.prop
    """,
    "q3": """
        SELECT B.prop, B.obj, count(*)
        FROM triples AS A, triples AS B,
             properties P
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
          AND P.prop = B.prop
        GROUP BY B.prop, B.obj
        HAVING count(*) > 1
    """,
    "q3*": """
        SELECT B.prop, B.obj, count(*)
        FROM triples AS A, triples AS B
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
        GROUP BY B.prop, B.obj
        HAVING count(*) > 1
    """,
    "q4": """
        SELECT B.prop, B.obj, count(*)
        FROM triples AS A, triples AS B, triples AS C,
             properties P
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
          AND P.prop = B.prop
          AND C.subj = B.subj
          AND C.prop = '<language>'
          AND C.obj = '<language/iso639-2b/fre>'
        GROUP BY B.prop, B.obj
        HAVING count(*) > 1
    """,
    "q4*": """
        SELECT B.prop, B.obj, count(*)
        FROM triples AS A, triples AS B, triples AS C
        WHERE A.subj = B.subj
          AND A.prop = '<type>'
          AND A.obj = '<Text>'
          AND C.subj = B.subj
          AND C.prop = '<language>'
          AND C.obj = '<language/iso639-2b/fre>'
        GROUP BY B.prop, B.obj
        HAVING count(*) > 1
    """,
    "q5": """
        SELECT B.subj, C.obj
        FROM triples AS A, triples AS B, triples AS C
        WHERE A.subj = B.subj
          AND A.prop = '<origin>'
          AND A.obj = '<info:marcorg/DLC>'
          AND B.prop = '<records>'
          AND B.obj = C.subj
          AND C.prop = '<type>'
          AND C.obj != '<Text>'
    """,
    "q6": """
        SELECT A.prop, count(*)
        FROM triples AS A,
             properties P,
             (
               (SELECT B.subj
                FROM triples AS B
                WHERE B.prop = '<type>'
                  AND B.obj = '<Text>')
               UNION
               (SELECT C.subj
                FROM triples AS C, triples AS D
                WHERE C.prop = '<records>'
                  AND C.obj = D.subj
                  AND D.prop = '<type>'
                  AND D.obj = '<Text>')
             ) AS uniontable
        WHERE A.subj = uniontable.subj
          AND P.prop = A.prop
        GROUP BY A.prop
    """,
    "q6*": """
        SELECT A.prop, count(*)
        FROM triples AS A,
             (
               (SELECT B.subj
                FROM triples AS B
                WHERE B.prop = '<type>'
                  AND B.obj = '<Text>')
               UNION
               (SELECT C.subj
                FROM triples AS C, triples AS D
                WHERE C.prop = '<records>'
                  AND C.obj = D.subj
                  AND D.prop = '<type>'
                  AND D.obj = '<Text>')
             ) AS uniontable
        WHERE A.subj = uniontable.subj
        GROUP BY A.prop
    """,
    "q7": """
        SELECT A.subj, B.obj, C.obj
        FROM triples AS A, triples AS B, triples AS C
        WHERE A.prop = '<Point>'
          AND A.obj = '"end"'
          AND A.subj = B.subj
          AND B.prop = '<Encoding>'
          AND A.subj = C.subj
          AND C.prop = '<type>'
    """,
    "q8": """
        SELECT B.subj
        FROM triples AS A, triples AS B
        WHERE A.subj = '<conferences>'
          AND B.subj != '<conferences>'
          AND A.obj = B.obj
    """,
}
