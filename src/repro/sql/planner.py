"""Lower SQL ASTs to engine-neutral logical plans.

The planner binds a statement against a
:class:`~repro.storage.catalog.StoreCatalog`: table names resolve through
the catalog's schema, string literals resolve through the dictionary (the
appendix notes "the actual queries use integer predicates, since all
strings are encoded on a dictionary structure").

Supported shape (everything the appendix needs): conjunctive WHERE clauses
of column-vs-literal selections and column-vs-column equi-joins that connect
the FROM items into one join tree, GROUP BY + count(*), HAVING on count(*),
UNION [ALL], subqueries in FROM, literals in the SELECT list.
"""

from repro.errors import SQLError
from repro.plan import (
    ColumnComparison,
    Comparison,
    Distinct,
    Extend,
    GroupBy,
    Having,
    Join,
    Limit,
    Project,
    Scan,
    Select,
    Sort,
    Union,
)
from repro.sql import ast
from repro.sql.parser import parse_sql


def plan_sql(sql_or_ast, catalog, schema=None, lint=None):
    """Plan SQL text (or a parsed AST) against *catalog*.

    The resulting plan runs through the static plan linter
    (:mod:`repro.analysis`): *lint* overrides the session lint mode for
    this call (``"off"``, ``"warn"`` — log warnings, the default — or
    ``"strict"`` — raise :class:`~repro.errors.PlanError` on warnings).
    """
    from repro.analysis import plan_lint

    if isinstance(sql_or_ast, str):
        statement = parse_sql(sql_or_ast)
    else:
        statement = sql_or_ast
    if schema is None:
        schema = default_schema(catalog)
    plan = _Planner(catalog, schema).plan(statement)
    plan_lint.check_plan(plan, where="sql", mode=lint)
    return plan


def default_schema(catalog):
    """Table -> column-name list, derived from the deployed scheme."""
    schema = {}
    if catalog.triples_table:
        schema[catalog.triples_table] = ["subj", "prop", "obj"]
    for table in catalog.property_tables.values():
        schema[table] = ["subj", "obj"]
    if catalog.properties_table:
        schema[catalog.properties_table] = ["prop"]
    return schema


class _Planner:
    def __init__(self, catalog, schema):
        self.catalog = catalog
        self.schema = schema

    def plan(self, statement):
        if isinstance(statement, ast.UnionStmt):
            inputs = [self.plan(s) for s in statement.selects]
            return Union(inputs, distinct=not statement.all)
        if isinstance(statement, ast.SelectStmt):
            return self._plan_select(statement)
        raise SQLError(f"cannot plan {type(statement).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _plan_select(self, stmt):
        bindings = self._plan_from_items(stmt.from_items)

        selections, joins, cross_filters = self._classify_conditions(
            stmt.where, bindings
        )
        for binding, predicates in selections.items():
            bindings[binding] = Select(bindings[binding], predicates)

        current = self._join_tree(bindings, joins, stmt)
        if cross_filters:
            current = Select(current, cross_filters)

        current, literal_columns = self._extend_literals(current, stmt.items)

        aggregate_outputs = {}
        if stmt.group_by or self._has_aggregate(stmt.items):
            current = self._group(
                current, stmt, bindings, literal_columns, aggregate_outputs
            )
            resolve = lambda col: self._resolve_grouped(col, stmt, bindings)
        else:
            if stmt.having is not None:
                raise SQLError("HAVING requires GROUP BY")
            resolve = lambda col: self._resolve_column(col, bindings)

        mapping = []
        used_names = set()
        for item in stmt.items:
            name = item.output_name()
            # SQL permits duplicate output column names (the appendix's q7
            # selects B.obj and C.obj); relations do not, so disambiguate.
            if name in used_names:
                suffix = 2
                while f"{name}_{suffix}" in used_names:
                    suffix += 1
                name = f"{name}_{suffix}"
            used_names.add(name)
            if isinstance(item.expr, ast.CountStar):
                mapping.append((name, "count"))
            elif isinstance(item.expr, ast.AggregateCall):
                mapping.append((name, aggregate_outputs[item.expr]))
            elif isinstance(item.expr, ast.ColumnRef):
                mapping.append((name, resolve(item.expr)))
            elif isinstance(item.expr, ast.StringLit):
                mapping.append((name, literal_columns[item.expr.value]))
            else:
                raise SQLError(f"unsupported select item {item.sql()}")
        plan = Project(current, mapping)
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.order_by:
            plan = Sort(
                plan,
                [
                    (self._resolve_order_column(o.column, mapping), o.direction)
                    for o in stmt.order_by
                ],
            )
        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _resolve_order_column(self, col, mapping):
        """ORDER BY refers to output columns: by alias/output name, or by
        the source column an output was projected from."""
        output_names = [o for o, _ in mapping]
        if col.qualifier is None and col.name in output_names:
            return col.name
        for out_name, in_name in mapping:
            if col.qualifier is not None:
                if in_name == f"{col.qualifier}.{col.name}":
                    return out_name
            elif in_name.split(".")[-1] == col.name:
                return out_name
        raise SQLError(
            f"ORDER BY column {col.sql()} is not in the select list"
        )

    # ------------------------------------------------------------------
    # FROM
    # ------------------------------------------------------------------

    def _plan_from_items(self, from_items):
        bindings = {}
        for item in from_items:
            name = item.binding()
            if name in bindings:
                raise SQLError(f"duplicate FROM binding {name!r}")
            if isinstance(item, ast.FromTable):
                columns = self.schema.get(item.table)
                if columns is None:
                    raise SQLError(f"unknown table {item.table!r}")
                bindings[name] = Scan(item.table, columns, alias=name)
            else:
                sub = self.plan(item.query)
                mapping = [
                    (f"{name}.{out}", out) for out in sub.output_columns()
                ]
                bindings[name] = Project(sub, mapping)
        return bindings

    # ------------------------------------------------------------------
    # WHERE
    # ------------------------------------------------------------------

    def _classify_conditions(self, where, bindings):
        selections = {}
        joins = []
        cross_filters = []
        for cond in where:
            left_col = isinstance(cond.left, ast.ColumnRef)
            right_col = isinstance(cond.right, ast.ColumnRef)
            if left_col and right_col:
                left = self._resolve_column(cond.left, bindings)
                right = self._resolve_column(cond.right, bindings)
                if cond.op == "=" and left.split(".", 1)[0] != right.split(
                    ".", 1
                )[0]:
                    joins.append((left, right))
                else:
                    # Non-equi column conditions, and conditions within one
                    # relation, are filters rather than join edges.
                    cross_filters.append(
                        ColumnComparison(left, cond.op, right)
                    )
            elif left_col or right_col:
                column = cond.left if left_col else cond.right
                literal = cond.right if left_col else cond.left
                op = cond.op if left_col else _flip(cond.op)
                resolved = self._resolve_column(column, bindings)
                owner = resolved.split(".", 1)[0]
                selections.setdefault(owner, []).append(
                    Comparison(resolved, op, self._literal_value(literal))
                )
            else:
                raise SQLError(
                    f"condition needs at least one column: {cond.sql()}"
                )
        return selections, joins, cross_filters

    def _literal_value(self, literal):
        if isinstance(literal, ast.NumberLit):
            return literal.value
        if isinstance(literal, ast.StringLit):
            return self.catalog.encode(literal.value)
        raise SQLError(f"unsupported literal {literal!r}")

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _join_tree(self, bindings, joins, stmt):
        order = list(bindings)
        joined = {order[0]}
        current = bindings[order[0]]
        remaining = list(joins)
        while len(joined) < len(order):
            progress = False
            for pair in list(remaining):
                left, right = pair
                l_owner = left.split(".", 1)[0]
                r_owner = right.split(".", 1)[0]
                if l_owner in joined and r_owner not in joined:
                    current = Join(
                        current, bindings[r_owner], on=[(left, right)]
                    )
                    joined.add(r_owner)
                elif r_owner in joined and l_owner not in joined:
                    current = Join(
                        current, bindings[l_owner], on=[(right, left)]
                    )
                    joined.add(l_owner)
                else:
                    continue
                remaining.remove(pair)
                progress = True
            if not progress:
                missing = sorted(set(order) - joined)
                raise SQLError(
                    "FROM items not connected by join conditions "
                    f"(cross products unsupported): {missing}"
                )
        # Conditions between already-joined relations (cyclic join graphs)
        # become post-join column-column filters.
        if remaining:
            current = Select(
                current,
                [
                    ColumnComparison(left, "=", right)
                    for left, right in remaining
                ],
            )
        return current

    # ------------------------------------------------------------------
    # literals, grouping, resolution
    # ------------------------------------------------------------------

    def _extend_literals(self, current, items):
        literal_columns = {}
        for i, item in enumerate(items):
            if isinstance(item.expr, ast.StringLit):
                value = item.expr.value
                if value in literal_columns:
                    continue
                column = f"__lit{i}"
                current = Extend(
                    current, column, self.catalog.encode(value)
                )
                literal_columns[value] = column
        return current, literal_columns

    def _has_aggregate(self, items):
        return any(
            isinstance(i.expr, (ast.CountStar, ast.AggregateCall))
            for i in items
        )

    def _group(self, current, stmt, bindings, literal_columns,
               aggregate_outputs):
        keys = []
        for col in stmt.group_by:
            keys.append(
                self._resolve_group_key(col, stmt, bindings, literal_columns)
            )
        aggregates = []
        for i, item in enumerate(stmt.items):
            expr = item.expr
            if isinstance(expr, ast.AggregateCall):
                if expr in aggregate_outputs:
                    continue
                output = f"__agg{i}"
                aggregates.append(
                    (
                        expr.func,
                        self._resolve_column(expr.column, bindings),
                        output,
                    )
                )
                aggregate_outputs[expr] = output
        grouped = GroupBy(
            current, keys=keys, count_column="count", aggregates=aggregates
        )
        if stmt.having is not None:
            grouped = Having(grouped, self._having_predicate(stmt.having))
        return grouped

    def _resolve_group_key(self, col, stmt, bindings, literal_columns):
        # A group key may name a select alias bound to a literal.
        for item in stmt.items:
            if (
                item.alias == col.name
                and col.qualifier is None
                and isinstance(item.expr, ast.StringLit)
            ):
                return literal_columns[item.expr.value]
        return self._resolve_column(col, bindings)

    def _having_predicate(self, cond):
        if isinstance(cond.left, ast.CountStar) and isinstance(
            cond.right, ast.NumberLit
        ):
            return Comparison("count", cond.op, cond.right.value)
        if isinstance(cond.right, ast.CountStar) and isinstance(
            cond.left, ast.NumberLit
        ):
            return Comparison("count", _flip(cond.op), cond.left.value)
        raise SQLError(
            f"only HAVING count(*) <op> <number> is supported: {cond.sql()}"
        )

    def _resolve_grouped(self, col, stmt, bindings):
        """Resolve a select column after grouping: it must be a group key."""
        resolved = self._resolve_column(col, bindings)
        keys = {
            self._resolve_column(g, bindings) for g in stmt.group_by
        }
        if resolved not in keys:
            raise SQLError(
                f"column {col.sql()} is neither grouped nor aggregated"
            )
        return resolved

    def _resolve_column(self, col, bindings):
        if col.qualifier:
            name = f"{col.qualifier}.{col.name}"
            owner = bindings.get(col.qualifier)
            if owner is None or name not in owner.output_columns():
                raise SQLError(f"unknown column {col.sql()}")
            return name
        matches = [
            f"{binding}.{col.name}"
            for binding, node in bindings.items()
            if f"{binding}.{col.name}" in node.output_columns()
        ]
        if not matches:
            raise SQLError(f"unknown column {col.sql()}")
        if len(matches) > 1:
            raise SQLError(f"ambiguous column {col.sql()}: {matches}")
        return matches[0]


def _flip(op):
    return {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}[
        op
    ]
