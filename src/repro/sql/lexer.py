"""SQL lexer for the benchmark subset."""

from repro.errors import SQLError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "GROUP", "BY", "HAVING",
    "UNION", "ALL", "AS", "COUNT", "ORDER", "ASC", "DESC", "LIMIT",
    "MIN", "MAX",
}

SYMBOLS = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "*": "STAR",
    ".": "DOT",
    "=": "EQ",
    "!=": "NE",
    "<>": "NE",
    ">": "GT",
    "<": "LT",
    ">=": "GE",
    "<=": "LE",
    ";": "SEMI",
}


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text):
    """Tokenize SQL text, returning a list ending with an EOF token."""
    tokens = []
    line, column = 1, 1
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = length if end < 0 else end
            continue
        if ch == "'":
            end = i + 1
            while end < length and text[end] != "'":
                end += 1
            if end >= length:
                raise SQLError("unterminated string literal", line, column)
            tokens.append(Token("STRING", text[i + 1 : end], line, column))
            column += end - i + 1
            i = end + 1
            continue
        if ch.isdigit():
            end = i
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token("NUMBER", int(text[i:end]), line, column))
            column += end - i
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[i:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(upper, upper, line, column))
            else:
                tokens.append(Token("IDENT", word, line, column))
            column += end - i
            i = end
            continue
        two = text[i : i + 2]
        if two in SYMBOLS:
            tokens.append(Token(SYMBOLS[two], two, line, column))
            i += 2
            column += 2
            continue
        if ch in SYMBOLS:
            tokens.append(Token(SYMBOLS[ch], ch, line, column))
            i += 1
            column += 1
            continue
        raise SQLError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", None, line, column))
    return tokens
