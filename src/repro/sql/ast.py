"""Abstract syntax tree for the SQL subset, with a back-to-SQL serializer.

The serializer matters: the vertically-partitioned SQL *generator* works by
parsing the triple-store SQL, transforming the AST, and emitting SQL text
again — the same round trip the paper's Perl script performed on strings.
"""

from dataclasses import dataclass
from typing import Optional


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    qualifier: Optional[str]
    name: str

    def sql(self):
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class StringLit:
    value: str

    def sql(self):
        return f"'{self.value}'"


@dataclass(frozen=True)
class NumberLit:
    value: int

    def sql(self):
        return str(self.value)


@dataclass(frozen=True)
class CountStar:
    def sql(self):
        return "count(*)"


@dataclass(frozen=True)
class AggregateCall:
    """``min(col)`` / ``max(col)``."""

    func: str  # "min" | "max"
    column: ColumnRef

    def sql(self):
        return f"{self.func}({self.column.sql()})"


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: Optional[str] = None

    def sql(self):
        if self.alias:
            return f"{self.expr.sql()} AS {self.alias}"
        return self.expr.sql()

    def output_name(self):
        if self.alias:
            return self.alias
        if isinstance(self.expr, CountStar):
            return "count"
        if isinstance(self.expr, AggregateCall):
            return f"{self.expr.func}_{self.expr.column.name}"
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        raise ValueError(f"select item needs an alias: {self.expr.sql()}")


@dataclass(frozen=True)
class Condition:
    left: object
    op: str  # '=', '!=', '<', '<=', '>', '>='
    right: object

    def sql(self):
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


# ---------------------------------------------------------------------------
# FROM items and statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FromTable:
    table: str
    alias: Optional[str] = None

    def sql(self):
        if self.alias:
            return f"{self.table} AS {self.alias}"
        return self.table

    def binding(self):
        return self.alias or self.table


@dataclass(frozen=True)
class FromSubquery:
    query: object  # SelectStmt or UnionStmt
    alias: str

    def sql(self):
        return f"(\n{_indent(self.query.sql())}\n) AS {self.alias}"

    def binding(self):
        return self.alias


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    direction: str = "asc"  # "asc" | "desc"

    def sql(self):
        if self.direction == "desc":
            return f"{self.column.sql()} DESC"
        return self.column.sql()


@dataclass(frozen=True)
class SelectStmt:
    items: tuple
    from_items: tuple
    where: tuple = ()          # conjunction of Conditions
    group_by: tuple = ()       # ColumnRefs
    having: Optional[Condition] = None
    distinct: bool = False
    order_by: tuple = ()       # OrderItems
    limit: Optional[int] = None

    def sql(self):
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        parts.append(", ".join(i.sql() for i in self.items))
        parts.append("\nFROM ")
        parts.append(",\n     ".join(f.sql() for f in self.from_items))
        if self.where:
            parts.append("\nWHERE ")
            parts.append("\n  AND ".join(c.sql() for c in self.where))
        if self.group_by:
            parts.append("\nGROUP BY ")
            parts.append(", ".join(c.sql() for c in self.group_by))
        if self.having is not None:
            parts.append(f"\nHAVING {self.having.sql()}")
        if self.order_by:
            parts.append("\nORDER BY ")
            parts.append(", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"\nLIMIT {self.limit}")
        return "".join(parts)


@dataclass(frozen=True)
class UnionStmt:
    selects: tuple  # SelectStmt / UnionStmt operands
    all: bool = False

    def sql(self):
        keyword = "UNION ALL" if self.all else "UNION"
        return f"\n{keyword}\n".join(
            f"({s.sql()})" for s in self.selects
        )


def _indent(text, prefix="  "):
    return "\n".join(prefix + line for line in text.splitlines())
