"""Recursive-descent parser for the benchmark SQL subset."""

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.lexer import tokenize


def parse_sql(text):
    """Parse SQL text into a :class:`SelectStmt` or :class:`UnionStmt`."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_query()
    parser.accept("SEMI")
    parser.expect("EOF")
    return stmt


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind):
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind):
        token = self.peek()
        if token.kind != kind:
            raise SQLError(
                f"expected {kind}, found {token.kind} ({token.value!r})",
                token.line,
                token.column,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------

    def parse_query(self):
        """query := term (UNION [ALL] term)*"""
        first = self.parse_term()
        selects = [first]
        all_flags = []
        while self.accept("UNION"):
            all_flags.append(self.accept("ALL") is not None)
            selects.append(self.parse_term())
        if len(selects) == 1:
            return first
        if len(set(all_flags)) > 1:
            raise SQLError("mixing UNION and UNION ALL is not supported")
        return ast.UnionStmt(tuple(selects), all=all_flags[0])

    def parse_term(self):
        """term := '(' query ')' | select_stmt"""
        if self.peek().kind == "LPAREN":
            self.expect("LPAREN")
            query = self.parse_query()
            self.expect("RPAREN")
            return query
        return self.parse_select()

    def parse_select(self):
        self.expect("SELECT")
        distinct = self.accept("DISTINCT") is not None
        items = [self.parse_select_item()]
        while self.accept("COMMA"):
            items.append(self.parse_select_item())
        self.expect("FROM")
        from_items = [self.parse_from_item()]
        while self.accept("COMMA"):
            from_items.append(self.parse_from_item())
        where = ()
        if self.accept("WHERE"):
            conditions = [self.parse_condition()]
            while self.accept("AND"):
                conditions.append(self.parse_condition())
            where = tuple(conditions)
        group_by = ()
        if self.accept("GROUP"):
            self.expect("BY")
            columns = [self.parse_column()]
            while self.accept("COMMA"):
                columns.append(self.parse_column())
            group_by = tuple(columns)
        having = None
        if self.accept("HAVING"):
            having = self.parse_condition()
        order_by = ()
        if self.accept("ORDER"):
            self.expect("BY")
            order_items = [self.parse_order_item()]
            while self.accept("COMMA"):
                order_items.append(self.parse_order_item())
            order_by = tuple(order_items)
        limit = None
        if self.accept("LIMIT"):
            limit = self.expect("NUMBER").value
        return ast.SelectStmt(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
        )

    def parse_order_item(self):
        if self.peek().kind == "COUNT":
            # ORDER BY count(*) — refer to the aggregate output column.
            self.advance()
            if self.accept("LPAREN"):
                self.expect("STAR")
                self.expect("RPAREN")
            column = ast.ColumnRef(None, "count")
        else:
            column = self.parse_column()
        direction = "asc"
        if self.accept("DESC"):
            direction = "desc"
        elif self.accept("ASC"):
            direction = "asc"
        return ast.OrderItem(column, direction)

    def parse_select_item(self):
        expr = self.parse_expr()
        alias = None
        if self.accept("AS"):
            alias = self.expect("IDENT").value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_expr(self):
        token = self.peek()
        if token.kind == "COUNT":
            self.advance()
            self.expect("LPAREN")
            self.expect("STAR")
            self.expect("RPAREN")
            return ast.CountStar()
        if token.kind in ("MIN", "MAX"):
            self.advance()
            self.expect("LPAREN")
            column = self.parse_column()
            self.expect("RPAREN")
            return ast.AggregateCall(token.kind.lower(), column)
        if token.kind == "STRING":
            self.advance()
            return ast.StringLit(token.value)
        if token.kind == "NUMBER":
            self.advance()
            return ast.NumberLit(token.value)
        return self.parse_column()

    def parse_column(self):
        name = self.expect("IDENT").value
        if self.accept("DOT"):
            return ast.ColumnRef(name, self.expect("IDENT").value)
        return ast.ColumnRef(None, name)

    def parse_from_item(self):
        if self.peek().kind == "LPAREN":
            self.expect("LPAREN")
            query = self.parse_query()
            self.expect("RPAREN")
            self.accept("AS")
            alias = self.expect("IDENT").value
            return ast.FromSubquery(query, alias)
        table = self.expect("IDENT").value
        alias = None
        if self.accept("AS"):
            alias = self.expect("IDENT").value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.FromTable(table, alias)

    def parse_condition(self):
        left = self.parse_expr()
        token = self.peek()
        operators = {"EQ": "=", "NE": "!=", "GT": ">", "LT": "<",
                     "GE": ">=", "LE": "<="}
        if token.kind not in operators:
            raise SQLError(
                f"expected comparison operator, found {token.kind}",
                token.line,
                token.column,
            )
        self.advance()
        right = self.parse_expr()
        return ast.Condition(left, operators[token.kind], right)
