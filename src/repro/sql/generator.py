"""Generate vertically-partitioned SQL from triple-store SQL.

The paper (appendix): "The SQL code for the vertically-partitioned
implementation is produced by a Perl script.  The input of the Perl script
is the SQL code of triple-store and a list of properties to be iterated
over in the FROM clause."

This module is that script, operating on ASTs instead of strings.  For each
``triples`` FROM item:

* if the WHERE clause binds its ``prop`` to a constant, the item becomes a
  scan of that property's two-column table (and the binding condition is
  dropped),
* otherwise the item becomes a UNION ALL subquery reassembling a
  triples-shaped relation from every property table in the given list —
  the "sizable SQL clause" whose operator count the scalability experiments
  measure.

When the property list is a restriction (the Longwell 28), the
``properties`` filter table and its join are dropped — the restriction is
realized "by including only those properties in the from clause"
(Section 4.2).
"""

from repro.errors import SQLError, StorageError
from repro.sql import ast
from repro.sql.parser import parse_sql


def generate_vertical_sql(sql_text, catalog, properties=None,
                          triples_table="triples",
                          properties_table="properties"):
    """Rewrite triple-store SQL text into vertically-partitioned SQL text.

    *catalog* must be a vertical-scheme catalog (it supplies the property ->
    table mapping); *properties* is the list to iterate for unbound
    properties (default: every property in the catalog).
    """
    statement = parse_sql(sql_text)
    if properties is None:
        properties = catalog.properties_for("all")
    rewriter = _Rewriter(
        catalog, list(properties), triples_table, properties_table
    )
    return rewriter.rewrite(statement).sql()


class _Rewriter:
    def __init__(self, catalog, properties, triples_table, properties_table):
        self.catalog = catalog
        self.properties = properties
        self.triples_table = triples_table
        self.properties_table = properties_table

    def rewrite(self, statement):
        if isinstance(statement, ast.UnionStmt):
            return ast.UnionStmt(
                tuple(self.rewrite(s) for s in statement.selects),
                all=statement.all,
            )
        if isinstance(statement, ast.SelectStmt):
            return self._rewrite_select(statement)
        raise SQLError(f"cannot rewrite {type(statement).__name__}")

    def _rewrite_select(self, stmt):
        from_items = []
        where = list(stmt.where)
        for item in stmt.from_items:
            if isinstance(item, ast.FromSubquery):
                from_items.append(
                    ast.FromSubquery(self.rewrite(item.query), item.alias)
                )
                continue
            if item.table == self.properties_table:
                # The property restriction now lives in the FROM clause.
                where = self._drop_binding_conditions(where, item.binding())
                continue
            if item.table != self.triples_table:
                from_items.append(item)
                continue
            binding = item.binding()
            bound_property, where = self._extract_prop_binding(
                where, binding
            )
            if bound_property is not None:
                from_items.append(
                    ast.FromTable(
                        self._property_table(bound_property), binding
                    )
                )
            else:
                from_items.append(
                    ast.FromSubquery(self._union_subquery(), binding)
                )
        return ast.SelectStmt(
            items=stmt.items,
            from_items=tuple(from_items),
            where=tuple(where),
            group_by=stmt.group_by,
            having=stmt.having,
            distinct=stmt.distinct,
        )

    def _property_table(self, property_name):
        try:
            return self.catalog.property_table(property_name)
        except StorageError:
            raise SQLError(
                f"no vertically-partitioned table for {property_name!r}"
            ) from None

    def _extract_prop_binding(self, where, binding):
        """Find and remove ``binding.prop = '<constant>'``; return the
        constant (or None) and the remaining conditions."""
        bound = None
        remaining = []
        for cond in where:
            match = self._prop_equality(cond, binding)
            if match is not None and bound is None:
                bound = match
            else:
                remaining.append(cond)
        if bound is not None:
            self._forbid_prop_references(remaining, binding)
        return bound, remaining

    def _prop_equality(self, cond, binding):
        if cond.op != "=":
            return None
        left, right = cond.left, cond.right
        if isinstance(right, ast.ColumnRef) and isinstance(
            left, ast.StringLit
        ):
            left, right = right, left
        if (
            isinstance(left, ast.ColumnRef)
            and left.qualifier == binding
            and left.name == "prop"
            and isinstance(right, ast.StringLit)
        ):
            return right.value
        return None

    def _forbid_prop_references(self, conditions, binding):
        for cond in conditions:
            for side in (cond.left, cond.right):
                if (
                    isinstance(side, ast.ColumnRef)
                    and side.qualifier == binding
                    and side.name == "prop"
                ):
                    raise SQLError(
                        f"{binding}.prop is bound to one property table and "
                        f"cannot also appear in {cond.sql()}"
                    )

    def _drop_binding_conditions(self, where, binding):
        return [
            cond
            for cond in where
            if not any(
                isinstance(side, ast.ColumnRef) and side.qualifier == binding
                for side in (cond.left, cond.right)
            )
        ]

    def _union_subquery(self):
        """``(SELECT subj, '<p>' AS prop, obj FROM vp_p) UNION ALL ...``"""
        branches = []
        for prop in self.properties:
            branches.append(
                ast.SelectStmt(
                    items=(
                        ast.SelectItem(ast.ColumnRef(None, "subj")),
                        ast.SelectItem(ast.StringLit(prop), "prop"),
                        ast.SelectItem(ast.ColumnRef(None, "obj")),
                    ),
                    from_items=(
                        ast.FromTable(self._property_table(prop)),
                    ),
                )
            )
        if len(branches) == 1:
            return branches[0]
        return ast.UnionStmt(tuple(branches), all=True)
