"""SQL front-end.

The paper's appendix lists the benchmark queries as SQL against the
triple-store schema, and notes that "the SQL code for the
vertically-partitioned implementation is produced by a Perl script" because
SQL cannot iterate over tables in a FROM clause.  This package provides the
same workflow:

* :func:`parse_sql` — lexer + recursive-descent parser for the SQL subset
  the appendix uses (SELECT / FROM with aliases and subqueries / WHERE
  conjunctions / GROUP BY / HAVING count(*) / UNION [ALL]),
* :func:`plan_sql` — lower an AST (or SQL text) to an engine-neutral
  logical plan against a store catalog,
* :func:`repro.sql.generator.generate_vertical_sql` — the "Perl script":
  rewrite triple-store SQL into vertically-partitioned SQL over a property
  list, producing the union-heavy statements of Section 4.2,
* :data:`repro.sql.appendix.APPENDIX_SQL` — the paper's appendix queries,
  verbatim modulo dictionary constants.
"""

from repro.sql.parser import parse_sql
from repro.sql.planner import plan_sql
from repro.sql.generator import generate_vertical_sql
from repro.sql.appendix import APPENDIX_SQL

__all__ = ["parse_sql", "plan_sql", "generate_vertical_sql", "APPENDIX_SQL"]
