"""repro — reproduction of "Column-Store Support for RDF Data Management:
not all swans are white" (Sidirourgos et al., VLDB 2008).

The package rebuilds the paper's complete experimental apparatus from
scratch in Python:

* :mod:`repro.core` — the public :class:`~repro.core.RDFStore` facade,
* :mod:`repro.colstore` / :mod:`repro.rowstore` / :mod:`repro.cstore` —
  the three engines (MonetDB-like, DBX-like, C-Store replica),
* :mod:`repro.storage` — the triple-store and vertically-partitioned
  schemes,
* :mod:`repro.queries` / :mod:`repro.sql` — the benchmark queries as plans
  and as the appendix SQL (plus the vertically-partitioned SQL generator),
* :mod:`repro.data` — the Barton-like synthetic dataset,
* :mod:`repro.bench` — the cold/hot protocol and one experiment driver per
  table/figure of the paper.
"""

__version__ = "1.0.0"

from repro.core import RDFStore, Var
from repro.data import generate_barton
from repro.model import Triple, RDFGraph, parse_ntriples_text

__all__ = [
    "RDFStore",
    "Var",
    "Triple",
    "RDFGraph",
    "generate_barton",
    "parse_ntriples_text",
    "__version__",
]
