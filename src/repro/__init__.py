"""repro — reproduction of "Column-Store Support for RDF Data Management:
not all swans are white" (Sidirourgos et al., VLDB 2008).

The package rebuilds the paper's complete experimental apparatus from
scratch in Python:

* :mod:`repro.core` — the public :class:`~repro.core.RDFStore` facade,
* :mod:`repro.colstore` / :mod:`repro.rowstore` / :mod:`repro.cstore` —
  the three engines (MonetDB-like, DBX-like, C-Store replica),
* :mod:`repro.storage` — the triple-store and vertically-partitioned
  schemes,
* :mod:`repro.queries` / :mod:`repro.sql` — the benchmark queries as plans
  and as the appendix SQL (plus the vertically-partitioned SQL generator),
* :mod:`repro.data` — the Barton-like synthetic dataset,
* :mod:`repro.bench` — the cold/hot protocol and one experiment driver per
  table/figure of the paper.

Beyond the paper, the stable query surface lives in :mod:`repro.api`
(re-exported here)::

    import repro

    conn = repro.connect(triples=...)
    with conn.session() as session:
        result = session.query("q1")

and :func:`repro.serve` / :mod:`repro.server` turn one deployment into a
concurrent query server with workload replay.
"""

__version__ = "1.1.0"

from repro.api import (
    Connection,
    Result,
    Session,
    connect,
)
from repro.core import RDFStore, Var
from repro.data import generate_barton
from repro.errors import (
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ServerOverloaded,
    SessionClosed,
)
from repro.model import Triple, RDFGraph, parse_ntriples_text
from repro.server import serve

__all__ = [
    "RDFStore",
    "Var",
    "Triple",
    "RDFGraph",
    "generate_barton",
    "parse_ntriples_text",
    "connect",
    "Connection",
    "Session",
    "Result",
    "serve",
    "ReproError",
    "QueryCancelled",
    "QueryTimeout",
    "SessionClosed",
    "ServerOverloaded",
    "__version__",
]
