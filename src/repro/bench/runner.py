"""The cold/hot run protocol."""

from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class RunResult:
    """Outcome of one measured benchmark run."""

    query: str
    mode: str  # "cold" or "hot"
    timing: object  # QueryTiming
    n_rows: int


class BenchmarkRunner:
    """Runs queries against one engine under the paper's protocol.

    The engine must expose ``make_cold()`` and the execution callable must
    return ``(relation, timing)``.  The simulated clock is deterministic, so
    one measured run replaces the paper's average-of-three.
    """

    def __init__(self, engine):
        self.engine = engine

    def run_cold(self, query_name, execute):
        """Restart-the-server run: caches cleared first."""
        self.engine.make_cold()
        relation, timing = execute()
        return RunResult(query_name, "cold", timing, relation.n_rows)

    def run_hot(self, query_name, execute):
        """Hot run: one warm-up execution, then the measured run.

        A hot run may still read from disk when the engine's buffer pool is
        smaller than the query's working set — the C-Store replica does, by
        design (restrictive buffer space, paper Section 3); its hot runs
        stay partially I/O-bound exactly as Table 4 shows.
        """
        execute()  # load the relevant data into the buffer pool
        relation, timing = execute()
        return RunResult(query_name, "hot", timing, relation.n_rows)

    def run(self, query_name, execute, mode):
        if mode == "cold":
            return self.run_cold(query_name, execute)
        if mode == "hot":
            return self.run_hot(query_name, execute)
        raise BenchmarkError(f"unknown mode {mode!r}")
