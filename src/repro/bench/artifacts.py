"""Content-addressed on-disk cache for benchmark artifacts.

The experiment sweeps (Figures 6/7, the ``benchmarks/`` suite) regenerate
the same Barton scale model and rebuild the same stores over and over.
Every one of those artifacts is a pure function of its generator parameters
and a seed, so this module caches them on disk under a key derived from the
parameters — a cache hit returns an object byte-identical to a fresh build.

Layout::

    <root>/<kind>/<sha256-of-params>.pkl

Each entry is a small header (the SHA-256 of the payload, hex, one line)
followed by the pickled payload.  A corrupt entry — truncated file, flipped
bits, unpicklable body — fails the checksum or the load and is silently
rebuilt, never crashed on.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro``),
* ``REPRO_CACHE_MAX_BYTES`` — eviction threshold (default 512 MB; oldest
  entries by access time are evicted after every write),
* ``REPRO_CACHE_DISABLE=1`` — bypass the cache entirely (every lookup
  builds).

Keys include ``SCHEMA_VERSION``: bump it whenever the pickled layout of a
cached artifact changes, and every old entry is invalidated at once.
"""

import hashlib
import json
import os
import pathlib
import pickle

from repro.observe.log import get_logger
from repro.observe.race import guard_lock

log = get_logger("bench.artifacts")

#: Bump to invalidate every existing cache entry (e.g. when the pickled
#: layout of datasets or store payloads changes).
SCHEMA_VERSION = 1

_DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def default_cache_root():
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def cache_disabled():
    return os.environ.get("REPRO_CACHE_DISABLE", "") not in ("", "0")


class ArtifactCache:
    """Content-addressed pickle cache keyed by build parameters."""

    def __init__(self, root=None, max_bytes=None, schema=SCHEMA_VERSION):
        self.root = pathlib.Path(root) if root else default_cache_root()
        if max_bytes is None:
            max_bytes = int(
                os.environ.get("REPRO_CACHE_MAX_BYTES", _DEFAULT_MAX_BYTES)
            )
        self.max_bytes = max_bytes
        self.schema = schema
        #: Hit/miss/corrupt counters for observability and tests.
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def key(self, kind, params):
        """Content address of an artifact: schema + kind + params.

        *params* must be JSON-serializable; dict keys are sorted, so two
        parameter dicts with equal content address the same entry.
        """
        document = {"schema": self.schema, "kind": kind, "params": params}
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path(self, kind, params):
        return self.root / kind / f"{self.key(kind, params)}.pkl"

    # ------------------------------------------------------------------
    # lookup / build
    # ------------------------------------------------------------------

    def get_or_build(self, kind, params, build):
        """Return the cached artifact for (kind, params), building on miss.

        *build* is a zero-argument callable producing the artifact.  The
        artifact must be picklable; the cache never mutates it.
        """
        if cache_disabled():
            return build()
        path = self.path(kind, params)
        value, ok = self._load(path)
        if ok:
            self.hits += 1
            log.debug("cache hit: %s/%s", kind, path.name)
            return value
        self.misses += 1
        value = build()
        try:
            self._store(path, value)
        except OSError as exc:  # unwritable cache must never fail the build
            log.debug("cache write failed for %s: %s", path, exc)
        return value

    def _load(self, path):
        """Read an entry; returns ``(value, ok)``.  Corruption -> not ok."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None, False
        header, sep, body = blob.partition(b"\n")
        if not sep or len(header) != 64:
            self._discard_corrupt(path)
            return None, False
        if hashlib.sha256(body).hexdigest().encode("ascii") != header:
            self._discard_corrupt(path)
            return None, False
        try:
            value = pickle.loads(body)
        except Exception:
            self._discard_corrupt(path)
            return None, False
        try:  # refresh access time for LRU eviction
            os.utime(path)
        except OSError:
            pass
        return value, True

    def _discard_corrupt(self, path):
        self.corrupt += 1
        log.warning("discarding corrupt cache entry %s", path)
        try:
            path.unlink()
        except OSError:
            pass

    def _store(self, path, value):
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = hashlib.sha256(body).hexdigest().encode("ascii")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(header + b"\n" + body)
        os.replace(tmp, path)  # atomic: readers never see partial entries
        self.prune()

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def entries(self):
        """Every cache entry as ``(path, nbytes, atime)``."""
        found = []
        if not self.root.exists():
            return found
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append((path, stat.st_size, stat.st_atime))
        return found

    def total_bytes(self):
        return sum(nbytes for _, nbytes, _ in self.entries())

    def prune(self, max_bytes=None):
        """Evict least-recently-used entries above the size threshold."""
        limit = self.max_bytes if max_bytes is None else max_bytes
        entries = sorted(self.entries(), key=lambda e: e[2])  # oldest first
        total = sum(nbytes for _, nbytes, _ in entries)
        evicted = 0
        for path, nbytes, _ in entries:
            if total <= limit:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= nbytes
            evicted += 1
        if evicted:
            log.debug("evicted %d cache entries", evicted)
        return evicted

    def clear(self):
        for path, _, _ in self.entries():
            try:
                path.unlink()
            except OSError:
                pass


#: Process-wide default cache, shared by the CLI, the benchmark fixtures and
#: the scheduler's worker processes.  Lazily created under a lock so two
#: server threads racing the first touch cannot build (and half-lose)
#: separate caches.
_DEFAULT_CACHE_LOCK = guard_lock("bench.artifacts._DEFAULT_CACHE")
_DEFAULT_CACHE = None  # guarded-by: _DEFAULT_CACHE_LOCK


def default_cache():
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = ArtifactCache()
        return _DEFAULT_CACHE


def cache_stats():
    """Hit/miss/corrupt counters of the process-wide default cache.

    Zeroes when the cache was never touched — the counters live on the
    instance, so this never *creates* the cache just to report on it.
    """
    cache = _DEFAULT_CACHE
    if cache is None:
        return {"hits": 0, "misses": 0, "corrupt": 0}
    return {"hits": cache.hits, "misses": cache.misses,
            "corrupt": cache.corrupt}


# ----------------------------------------------------------------------
# artifact builders
# ----------------------------------------------------------------------

def dataset_params(config):
    """JSON-safe cache parameters of a :class:`BartonConfig`."""
    from dataclasses import asdict

    return asdict(config)


def cached_dataset(config=None, cache=None, **overrides):
    """A :func:`generate_barton` dataset, cached on disk by its config."""
    from repro.data.barton import BartonConfig, generate_barton

    if config is None:
        config = BartonConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config or keyword overrides, not both")
    cache = cache or default_cache()
    return cache.get_or_build(
        "dataset", dataset_params(config), lambda: generate_barton(config)
    )


def dataset_cache_key(dataset):
    """JSON-safe content key of a dataset-like object, or ``None``.

    A dataset is cacheable when it exposes either ``cache_params`` (an
    explicit key, used by derived datasets such as the figure-7 property
    splits) or a generator ``config``.  ``None`` means "uncacheable" —
    callers must fall back to building uncached.
    """
    params = getattr(dataset, "cache_params", None)
    if params is not None:
        return params() if callable(params) else params
    config = getattr(dataset, "config", None)
    if config is not None:
        return dataset_params(config)
    return None


def cached_store_payload(dataset, scheme, clustering="PSO",
                         with_indexes=False, cache=None):
    """A prepared store payload for *dataset*, cached by physical design.

    The payload (see :mod:`repro.storage.payload`) holds the expensive half
    of a deploy — dictionary encoding plus load sorting — so a cache hit
    reduces deployment to table creation.  Uncacheable datasets (no content
    key) are prepared fresh.
    """
    from repro.storage import prepare_triple_payload, prepare_vertical_payload

    def build():
        if scheme == "triple":
            return prepare_triple_payload(
                dataset.triples, dataset.interesting_properties,
                clustering=clustering, with_indexes=with_indexes,
            )
        return prepare_vertical_payload(
            dataset.triples, dataset.interesting_properties,
            with_indexes=with_indexes,
        )

    key = dataset_cache_key(dataset)
    if key is None:
        return build()
    cache = cache or default_cache()
    params = {
        "dataset": key,
        "scheme": scheme,
        "clustering": clustering.upper() if scheme == "triple" else "SO",
        "with_indexes": bool(with_indexes),
    }
    return cache.get_or_build("store", params, build)


def cached_split(dataset, target, seed=0, protected=(),
                 max_subproperties=10, cache=None):
    """The figure-7 property-split triple list, cached per sweep point.

    Falls back to an uncached build when the dataset carries no generator
    config to derive a content key from.
    """
    from repro.data.splitting import split_properties

    def build():
        return split_properties(
            dataset.triples, target, seed=seed, protected=protected,
            max_subproperties=max_subproperties,
        )

    config = getattr(dataset, "config", None)
    if config is None:
        return build()
    cache = cache or default_cache()
    params = {
        "dataset": dataset_params(config),
        "target": target,
        "seed": seed,
        "protected": sorted(protected),
        "max_subproperties": max_subproperties,
    }
    return cache.get_or_build("split", params, build)
