"""Deploy the benchmark's system configurations.

The grid of Tables 6/7: two SQL engines (the DBX-like row store and the
MonetDB-like column store) each hosting the triple-store (clustered SPO or
PSO) and the vertically-partitioned scheme, plus the C-Store replica
(vertically-partitioned only).  All Tables 6/7 runs use machine B, as in
the paper (Section 4.3).
"""

from dataclasses import dataclass

from repro.colstore import ColumnStoreEngine
from repro.cstore import CStoreEngine
from repro.engine import (
    COLUMN_STORE_COSTS,
    CSTORE_COSTS,
    MACHINE_B,
    ROW_STORE_COSTS,
)
from repro.errors import BenchmarkError
from repro.queries import build_query
from repro.rowstore import RowStoreEngine
from repro.storage import build_triple_store, build_vertical_store

#: Triple count of the real Barton dump — the denominator of the scale
#: model (see MachineProfile.scaled).
PAPER_TRIPLE_COUNT = 50_255_599


def data_scale(dataset):
    """The 1:N scale factor of a synthetic dataset vs the Barton dump."""
    n = getattr(dataset, "n_triples", None)
    if n is None:
        n = len(dataset.triples)
    return min(1.0, n / PAPER_TRIPLE_COUNT)

#: (system, scheme, clustering) rows of Tables 6/7, in paper order.
SYSTEM_GRID = (
    ("DBX", "triple", "SPO"),
    ("DBX", "triple", "PSO"),
    ("DBX", "vert", "SO"),
    ("MonetDB", "triple", "SPO"),
    ("MonetDB", "triple", "PSO"),
    ("MonetDB", "vert", "SO"),
    ("C-Store", "vert", "SO"),
)


@dataclass
class Deployment:
    """An engine loaded with one storage scheme."""

    system: str
    scheme: str
    clustering: str
    engine: object
    catalog: object  # None for the C-Store replica
    scale: float = 1.0

    def label(self):
        return f"{self.system}/{self.scheme}-{self.clustering}"

    def scaled_seconds(self, seconds):
        """Convert simulated seconds to paper-scale-comparable seconds."""
        return seconds / self.scale

    def executor(self, query_name, scope=None):
        """Zero-argument callable running the query, for BenchmarkRunner."""
        if self.system == "C-Store":
            if scope is not None:
                raise BenchmarkError(
                    "the C-Store replica's hardwired plans cannot change "
                    "their property scope"
                )
            return lambda: self.engine.run(query_name)
        plan = build_query(self.catalog, query_name, scope=scope)
        return lambda: self.engine.run(plan)

    def supports(self, query_name):
        if self.system == "C-Store":
            return query_name in (
                "q1", "q2", "q3", "q4", "q5", "q6", "q7"
            )
        return True


def deploy(dataset, system, scheme, clustering="PSO", machine=MACHINE_B,
           cache=None, compression=None, workers=None):
    """Create one deployment of the grid over *dataset*.

    The engine runs as a 1:N scale model: fixed latencies and per-query
    overheads shrink with the dataset so simulated times divided by the
    scale factor are directly comparable with the paper's seconds.

    Deployments of cacheable datasets restore their encoded, pre-sorted
    store payload from the benchmark artifact cache (byte-identical to a
    fresh build).  *cache* selects the :class:`ArtifactCache` (default: the
    process-wide one); pass ``False`` to force a fresh build.

    *compression* enables columnar compression on the MonetDB-like engine
    (``"logical"``/``"physical"``, see
    :class:`~repro.storage.compress.CompressionConfig`).  The default
    ``None`` reads the ``REPRO_COMPRESS`` environment variable, so a whole
    benchmark run can be compressed without threading the option through
    every experiment.

    *workers* sets the MonetDB-like engine's intra-query degree of
    parallelism (morsel-driven; results and simulated costs are identical
    at any value).  The default ``None`` reads ``REPRO_WORKERS``.
    """
    # ``dataset.triples`` may be lazily materialized (figure-7 splits); only
    # touch it on paths that actually need the raw triples — the C-Store
    # loader and store-payload cache misses.
    if compression is None:
        import os

        compression = os.environ.get("REPRO_COMPRESS") or None
    interesting = dataset.interesting_properties
    scale = data_scale(dataset)
    scaled_machine = machine.scaled(scale)
    if system == "DBX":
        engine = RowStoreEngine(
            machine=scaled_machine, costs=ROW_STORE_COSTS.scaled(scale)
        )
    elif system == "MonetDB":
        engine = ColumnStoreEngine(
            machine=scaled_machine, costs=COLUMN_STORE_COSTS.scaled(scale),
            compression=compression, workers=workers,
        )
    elif system == "C-Store":
        # The replica's synchronous 64 KB requests cap its read rate at the
        # machine's effective small-request bandwidth (nearly identical on
        # A and B); encode that as the scaled profile's bandwidth so the
        # latency-bound behaviour survives the 1:N scale model.
        from repro.cstore.engine import MAX_REQUEST_BYTES

        cstore_machine = machine.with_read_bandwidth(
            machine.effective_bandwidth(MAX_REQUEST_BYTES)
        ).scaled(scale)
        engine = CStoreEngine(
            machine=cstore_machine, costs=CSTORE_COSTS.scaled(scale)
        )
        engine.load_vertical(dataset.triples, interesting)
        return Deployment(system, "vert", "SO", engine, None, scale)
    else:
        raise BenchmarkError(f"unknown system {system!r}")

    if scheme == "triple":
        builder = lambda: build_triple_store(
            engine, dataset.triples, interesting, clustering=clustering
        )
        store_scheme = "triple"
    elif scheme == "vert":
        builder = lambda: build_vertical_store(
            engine, dataset.triples, interesting
        )
        store_scheme = "vertical"
        clustering = "SO"
    else:
        raise BenchmarkError(f"unknown scheme {scheme!r}")

    if cache is False:
        catalog = builder()
    else:
        from repro.bench.artifacts import cached_store_payload
        from repro.storage import build_store_from_payload

        payload = cached_store_payload(
            dataset, store_scheme, clustering=clustering,
            with_indexes=engine.kind == "row-store",
            cache=cache or None,
        )
        catalog = build_store_from_payload(engine, payload)
    return Deployment(system, scheme, clustering, engine, catalog, scale)


def deploy_grid(dataset, machine=MACHINE_B, grid=SYSTEM_GRID, cache=None):
    """Deploy every system configuration of Tables 6/7."""
    return [
        deploy(dataset, *config, machine=machine, cache=cache)
        for config in grid
    ]
