"""The paper's published numbers, transcribed for paper-vs-measured reports.

All values are seconds on the authors' hardware (Table 3); this
reproduction does not target the absolute values — only the *shapes*: who
wins, by roughly what factor, where crossovers fall.  The constants here
let the harness print the paper's row next to the measured row for every
table.
"""

#: Table 1 — Barton data set details.
PAPER_TABLE1 = {
    "total triples": 50_255_599,
    "distinct properties": 222,
    "distinct subjects": 12_304_739,
    "distinct objects": 15_817_921,
    "distinct subjects that appear also as objects (and vice versa)": 9_654_007,
    "strings in dictionary": 18_468_875,
    "data set size (bytes)": 1253 * 1024 * 1024,
}

#: Table 2 — query-space coverage (triple patterns, join patterns).
PAPER_TABLE2 = {
    "q1": (["p7"], []),
    "q2": (["p2", "p8"], ["A"]),
    "q3": (["p2", "p8"], ["A"]),
    "q4": (["p2", "p8"], ["A"]),
    "q5": (["p2", "p7"], ["A", "C"]),
    "q6": (["p2", "p7", "p8"], ["A", "C"]),
    "q7": (["p2", "p7"], ["A"]),
    "q8": (["p6", "p8"], ["B"]),
}

_Q17 = ("q1", "q2", "q3", "q4", "q5", "q6", "q7")

#: Table 4 — C-Store repetition results (q1-q7 plus geometric mean G).
#: Keyed by (machine, mode, clock): list of 7 query times + G.
PAPER_TABLE4 = {
    ("A", "cold", "real"): [1.01, 2.21, 10.33, 2.47, 18.46, 11.42, 1.94, 4.2],
    ("A", "cold", "user"): [0.47, 1.14, 3.06, 1.37, 9.28, 8.91, 0.34, 1.8],
    ("A", "hot", "real"): [0.59, 1.33, 3.63, 1.62, 10.42, 10.36, 0.83, 2.3],
    ("A", "hot", "user"): [0.49, 1.14, 3.01, 1.37, 9.13, 8.91, 0.30, 1.7],
    ("B", "cold", "real"): [0.79, 1.79, 10.13, 2.80, 21.13, 12.71, 1.09, 3.8],
    ("B", "cold", "user"): [0.49, 1.18, 3.44, 1.30, 11.64, 10.56, 0.37, 1.9],
    ("B", "hot", "real"): [0.59, 1.35, 4.08, 1.52, 12.95, 12.04, 0.77, 2.4],
    ("B", "hot", "user"): [0.49, 1.17, 3.45, 1.28, 11.67, 10.49, 0.34, 1.9],
    ("[1]", "", ""): [0.66, 1.64, 9.28, 2.24, 15.88, 10.81, 1.44, 3.4],
}

#: Table 5 — data relevant to a query on C-Store (MB read, rows returned).
PAPER_TABLE5 = {
    "q1": (100, 30),
    "q2": (135, 9),
    "q3": (175, 3336),
    "q4": (142, 297),
    "q5": (250, 12916),
    "q6": (220, 14),
    "q7": (135, 74866),
}

_QUERY_ORDER = (
    "q1", "q2", "q2*", "q3", "q3*", "q4", "q4*", "q5", "q6", "q6*", "q7", "q8",
)


def _row(values):
    times = dict(zip(_QUERY_ORDER, values[:12]))
    return {"times": times, "G": values[12], "Gstar": values[13],
            "ratio": values[14]}


def _cstore_row(values):
    times = dict(zip(_Q17, values[:7]))
    return {"times": times, "G": values[7], "Gstar": None, "ratio": None}


#: Table 6 — cold runs.  Keyed by (system, scheme, clustering, clock).
PAPER_TABLE6 = {
    ("DBX", "triple", "SPO", "real"): _row(
        [12.59, 53.65, 108.76, 50.35, 144.81, 16.08, 13.82, 45.06, 127.45,
         170.99, 9.62, 19.45, 31.4, 40.8, 1.3]),
    ("DBX", "triple", "SPO", "user"): _row(
        [9.69, 28.82, 70.50, 30.48, 94.70, 9.06, 6.89, 12.88, 76.74, 114.66,
         1.91, 9.68, 14.6, 21.0, 1.4]),
    ("DBX", "triple", "PSO", "real"): _row(
        [2.35, 34.08, 37.93, 39.73, 72.72, 10.64, 9.84, 14.01, 54.66, 60.66,
         8.62, 19.61, 15.5, 20.9, 1.3]),
    ("DBX", "triple", "PSO", "user"): _row(
        [1.77, 30.85, 36.46, 36.49, 63.67, 3.68, 2.85, 11.04, 50.16, 58.79,
         1.72, 9.56, 9.5, 13.1, 1.4]),
    ("DBX", "vert", "SO", "real"): _row(
        [1.92, 44.29, 99.46, 49.88, 121.08, 10.11, 84.03, 6.32, 51.23,
         173.49, 2.70, 39.75, 12.0, 28.2, 2.4]),
    ("DBX", "vert", "SO", "user"): _row(
        [1.57, 40.62, 73.56, 46.27, 95.80, 6.34, 14.63, 5.78, 47.01, 154.67,
         1.24, 8.37, 9.3, 17.5, 1.9]),
    ("MonetDB", "triple", "SPO", "real"): _row(
        [3.06, 12.16, 12.30, 14.04, 27.32, 11.10, 11.00, 32.86, 25.79, 26.08,
         29.03, 6.65, 14.6, 14.5, 1.0]),
    ("MonetDB", "triple", "SPO", "user"): _row(
        [1.26, 2.96, 3.16, 4.7, 16.52, 1.48, 1.712, 2.83, 6.67, 6.21, 2.07,
         3.76, 2.6, 3.3, 1.3]),
    ("MonetDB", "triple", "PSO", "real"): _row(
        [2.66, 6.48, 6.62, 8.59, 16.92, 14.85, 20.67, 4.11, 9.60, 8.96, 3.46,
         8.43, 6.0, 7.8, 1.3]),
    ("MonetDB", "triple", "PSO", "user"): _row(
        [0.72, 2.32, 2.40, 3.83, 10.89, 2.09, 2.30, 1.21, 3.90, 3.95, 0.21,
         4.50, 1.4, 2.2, 1.6]),
    ("MonetDB", "vert", "SO", "real"): _row(
        [1.20, 3.50, 9.16, 5.22, 19.34, 2.28, 6.22, 2.00, 7.20, 16.58, 0.61,
         7.99, 2.3, 4.4, 1.9]),
    ("MonetDB", "vert", "SO", "user"): _row(
        [0.68, 1.87, 5.85, 2.96, 14.16, 0.57, 2.68, 1.09, 4.94, 12.46, 0.06,
         3.35, 0.9, 2.0, 2.2]),
    ("C-Store", "vert", "SO", "real"): _cstore_row(
        [0.79, 1.79, 10.13, 2.80, 21.13, 12.71, 1.09, 3.8]),
    ("C-Store", "vert", "SO", "user"): _cstore_row(
        [0.49, 1.18, 3.44, 1.30, 11.64, 10.56, 0.37, 1.9]),
}

#: Table 7 — hot runs.
PAPER_TABLE7 = {
    ("DBX", "triple", "SPO", "real"): _row(
        [4.29, 42.61, 93.11, 34.86, 97.92, 8.02, 6.12, 11.70, 89.11, 142.10,
         1.34, 14.47, 13.2, 21.1, 1.6]),
    ("DBX", "triple", "SPO", "user"): _row(
        [4.29, 33.31, 68.88, 34.16, 95.11, 8.02, 6.10, 11.68, 74.96, 120.36,
         1.27, 10.58, 12.3, 19.0, 1.5]),
    ("DBX", "triple", "PSO", "real"): _row(
        [1.72, 40.18, 38.35, 45.65, 67.32, 3.22, 2.49, 10.61, 57.52, 63.04,
         1.42, 12.14, 9.8, 13.6, 1.4]),
    ("DBX", "triple", "PSO", "user"): _row(
        [1.72, 40.17, 38.35, 45.64, 66.85, 3.22, 2.47, 10.60, 57.33, 63.03,
         1.34, 8.02, 9.7, 13.1, 1.4]),
    ("DBX", "vert", "SO", "real"): _row(
        [1.55, 39.62, 74.85, 45.17, 94.59, 6.12, 14.18, 5.69, 45.57, 154.81,
         1.25, 11.55, 9.1, 17.7, 1.9]),
    ("DBX", "vert", "SO", "user"): _row(
        [1.55, 39.61, 74.83, 45.16, 94.09, 6.12, 14.15, 5.67, 45.56, 153.08,
         1.18, 7.49, 9.1, 17.0, 1.9]),
    ("MonetDB", "triple", "SPO", "real"): _row(
        [1.53, 3.50, 3.63, 5.28, 17.54, 1.68, 1.98, 2.77, 8.37, 7.33, 1.82,
         4.76, 2.9, 3.7, 1.3]),
    ("MonetDB", "triple", "SPO", "user"): _row(
        [1.36, 2.73, 2.91, 4.33, 15.40, 1.41, 1.65, 2.30, 6.20, 5.70, 1.65,
         3.75, 2.4, 3.1, 1.3]),
    ("MonetDB", "triple", "PSO", "real"): _row(
        [0.78, 2.80, 2.83, 4.36, 12.59, 1.70, 1.97, 1.44, 5.67, 4.59, 0.18,
         5.23, 1.5, 2.4, 1.6]),
    ("MonetDB", "triple", "PSO", "user"): _row(
        [0.69, 2.31, 2.31, 3.69, 10.54, 1.59, 1.86, 1.16, 3.80, 3.65, 0.17,
         3.60, 1.3, 2.0, 1.5]),
    ("MonetDB", "vert", "SO", "real"): _row(
        [0.79, 1.50, 5.50, 2.64, 14.01, 0.50, 2.57, 1.29, 4.65, 11.51, 0.06,
         5.05, 0.9, 2.0, 2.2]),
    ("MonetDB", "vert", "SO", "user"): _row(
        [0.68, 1.44, 5.20, 2.52, 13.25, 0.48, 2.40, 1.03, 4.40, 11.23, 0.06,
         4.20, 0.8, 1.9, 2.4]),
    ("C-Store", "vert", "SO", "real"): _cstore_row(
        [0.59, 1.35, 4.08, 1.52, 12.95, 12.04, 0.77, 2.4]),
    ("C-Store", "vert", "SO", "user"): _cstore_row(
        [0.49, 1.17, 3.45, 1.28, 11.67, 10.49, 0.34, 1.9]),
}
