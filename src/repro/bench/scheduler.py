"""Process-pool scheduler for benchmark experiments.

The experiment drivers decompose their sweeps into independent *cells* —
one (system-configuration | sweep-point | machine) unit of work that
deploys its own engines, runs its queries, and returns a small picklable
result.  The scheduler runs cells either in-process (``jobs=1``) or across
a pool of worker processes (``jobs=N``), and hands the results back **in
submission order**, so merging is deterministic regardless of which worker
finished first.

Determinism guarantee
---------------------
A cell is a pure function of ``(dataset, *args)``: it builds fresh engines,
the simulated :class:`~repro.engine.clock.QueryClock` is deterministic, and
no state is shared between cells.  Parallel runs therefore produce tables,
figures, and simulated timings byte-identical to serial runs; only the
wall-clock metadata (``wall_ms``) differs.

Workers
-------
On POSIX the pool uses the ``fork`` start method and workers inherit the
dataset through a module global — no per-task pickling of the triple list.
Elsewhere (``spawn``) the dataset is shipped once per worker through the
pool initializer.  Cell functions must be module-level (picklable by
reference) and take the dataset as their first argument.

The default job count comes from the ``REPRO_BENCH_JOBS`` environment
variable (see ``docs/benchmarking.md``); ``repro bench --jobs N`` overrides
it per invocation.
"""

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.observe.log import get_logger
from repro.observe.race import guard_lock, shared_state

log = get_logger("bench.scheduler")

#: Environment knob for the default worker count (``repro bench --jobs``
#: and the ``benchmarks/`` suite both start from it).
JOBS_ENV = "REPRO_BENCH_JOBS"

#: Environment knob for wall-clock repeats per cell: with ``N > 1`` every
#: cell runs N times and reports the **minimum** wall-clock, which is what
#: the regression gate compares — min-of-N is far more stable than a single
#: sample.  Cells are pure functions, so the extra runs cannot change any
#: simulated result; only ``wall_ms`` is affected.
REPEATS_ENV = "REPRO_BENCH_REPEATS"

#: Process-wide always-on scheduler accounting (cells executed, repeats
#: performed, total wall-clock).  In-process for serial runs; parallel
#: workers accumulate their own copies, so the perf observatory records
#: runs serially.  Lock-guarded: cells may also run on the query server's
#: thread pool, where plain float/int ``+=`` loses updates.
_SCHEDULER_STATS_LOCK = guard_lock("bench.scheduler.SCHEDULER_STATS")
SCHEDULER_STATS = shared_state(  # guarded-by: _SCHEDULER_STATS_LOCK
    "bench.scheduler.SCHEDULER_STATS",
    {"cells": 0, "repeats": 0, "wall_ms": 0.0},
    _SCHEDULER_STATS_LOCK,
)


def scheduler_stats():
    """Snapshot of the process-wide scheduler counters (a fresh dict)."""
    with _SCHEDULER_STATS_LOCK:
        return dict(SCHEDULER_STATS)


def reset_scheduler_stats():
    with _SCHEDULER_STATS_LOCK:
        SCHEDULER_STATS["cells"] = 0
        SCHEDULER_STATS["repeats"] = 0
        SCHEDULER_STATS["wall_ms"] = 0.0


def default_repeats():
    """Wall-clock repeats per cell (``REPRO_BENCH_REPEATS``, default 1)."""
    raw = os.environ.get(REPEATS_ENV, "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        log.warning("ignoring invalid %s=%r", REPEATS_ENV, raw)
        return 1


def _available_cpus():
    """CPUs this process may run on — the useful worker ceiling."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def default_jobs():
    """Worker count from ``REPRO_BENCH_JOBS`` (default 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        log.warning("ignoring invalid %s=%r", JOBS_ENV, raw)
        return 1


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``fn`` must be a module-level function ``fn(dataset, *args)`` returning
    a picklable value; ``label`` is used for logging and wall-clock
    reporting.
    """

    fn: object
    args: tuple = ()
    label: str = ""


@dataclass(frozen=True)
class CellOutcome:
    """A cell's return value plus its wall-clock cost."""

    label: str
    value: object
    wall_ms: float


#: Dataset shared with forked workers (set just before the pool forks).
_WORKER_DATASET = None


def _set_worker_dataset(dataset):
    global _WORKER_DATASET
    # unguarded-ok: rebound by the parent before the pool forks and by the
    # worker initializer before any cell runs; never raced by query threads
    _WORKER_DATASET = dataset


def _run_cell(cell, dataset, repeats=None):
    """Run one cell, ``repeats`` times (default :func:`default_repeats`),
    reporting min-of-N wall-clock.  Repeat runs recompute the same value —
    cells are pure — so only the wall-clock measurement is affected."""
    if repeats is None:
        repeats = default_repeats()
    value = None
    wall_ms = None
    for attempt in range(repeats):
        start = time.perf_counter()
        result = cell.fn(dataset, *cell.args)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        if attempt == 0:
            value = result
        if wall_ms is None or elapsed_ms < wall_ms:
            wall_ms = elapsed_ms
        with _SCHEDULER_STATS_LOCK:
            SCHEDULER_STATS["repeats"] += 1
            SCHEDULER_STATS["wall_ms"] += elapsed_ms
    with _SCHEDULER_STATS_LOCK:
        SCHEDULER_STATS["cells"] += 1
    return CellOutcome(cell.label, value, wall_ms)


def _worker_entry(cell):
    return _run_cell(cell, _WORKER_DATASET)


def run_cells(cells, dataset=None, jobs=None):
    """Run every cell; returns :class:`CellOutcome` in submission order.

    ``jobs=None`` reads :data:`JOBS_ENV`; ``jobs<=1`` (or a single cell)
    runs serially in-process — the same cell functions, so the parallel
    path cannot diverge from it.
    """
    cells = list(cells)
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    if jobs == 1 or len(cells) <= 1:
        return [_run_cell(cell, dataset) for cell in cells]

    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        initializer, initargs = None, ()
        _set_worker_dataset(dataset)  # inherited by the forked workers
    else:  # spawn fallback: ship the dataset once per worker
        context = multiprocessing.get_context()
        initializer, initargs = _set_worker_dataset, (dataset,)

    n_workers = min(jobs, len(cells), max(_available_cpus(), 2))
    if n_workers < jobs:
        log.debug("clamping %d jobs to %d workers", jobs, n_workers)
    log.debug("running %d cells on %d workers", len(cells), n_workers)
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(_worker_entry, cell) for cell in cells]
            return [f.result() for f in futures]
    except BenchmarkError:
        raise
    finally:
        _set_worker_dataset(None)


def map_cells(fn, args_list, dataset=None, jobs=None, labels=None):
    """Run ``fn(dataset, *args)`` for each args tuple; values in order.

    Convenience wrapper over :func:`run_cells` for drivers that only need
    the values.  Returns ``(values, outcomes)``.
    """
    if labels is None:
        labels = [str(args) for args in args_list]
    cells = [
        Cell(fn=fn, args=tuple(args), label=label)
        for args, label in zip(args_list, labels)
    ]
    outcomes = run_cells(cells, dataset=dataset, jobs=jobs)
    return [o.value for o in outcomes], outcomes


def scheduler_meta(outcomes, jobs):
    """The ``meta`` block recorded on scheduled experiment results.

    Wall-clock numbers ride along in benchmark JSON twins but are excluded
    from byte-identity comparisons (see ``scripts/compare_bench_json.py``).
    """
    return {
        "jobs": max(1, int(jobs)) if jobs is not None else default_jobs(),
        "repeats": default_repeats(),
        "wall_ms": round(sum(o.wall_ms for o in outcomes), 3),
        "cells": [
            {"label": o.label, "wall_ms": round(o.wall_ms, 3)}
            for o in outcomes
        ],
    }
