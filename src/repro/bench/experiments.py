"""Experiment drivers: one function per table/figure of the paper.

Every driver returns an :class:`ExperimentResult` whose ``rows`` mirror the
layout of the corresponding paper table (or whose ``series`` mirror the
figure's curves), measured on the synthetic scale model.  Times are
reported in *scaled seconds* — simulated seconds divided by the dataset's
scale factor — which are directly comparable with the paper's numbers.
"""

from dataclasses import dataclass, field

from repro.bench.metrics import INITIAL_QUERIES, TimingCell, summarize
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import BenchmarkRunner
from repro.bench.systems import SYSTEM_GRID, Deployment, deploy, deploy_grid
from repro.data import compute_statistics, cumulative_distribution, split_properties
from repro.data.barton import WELL_KNOWN_PROPERTIES
from repro.data.stats import frequency_table
from repro.engine import MACHINES, MACHINE_B
from repro.errors import BenchmarkError
from repro.queries import ALL_QUERY_NAMES, coverage_table
from repro.queries.definitions import BASE_QUERY_NAMES

import numpy as np


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    name: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)
    series: dict = field(default_factory=dict)
    x_values: list = field(default_factory=list)
    x_label: str = ""

    def render(self, chart=True):
        if self.series:
            text = format_series(
                self.x_label, self.x_values, self.series, title=self.title
            )
            if chart and len(self.x_values) > 1:
                from repro.bench.ascii_chart import line_chart

                text += "\n" + line_chart(
                    self.x_values, self.series, x_label=self.x_label
                )
        else:
            text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_dict(self):
        """JSON-safe form (cells coerced to plain scalars or strings)."""
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_value(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
            "series": {
                label: [_json_value(v) for v in values]
                for label, values in self.series.items()
            },
            "x_values": [_json_value(v) for v in self.x_values],
            "x_label": self.x_label,
        }


def _json_value(value):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


# ---------------------------------------------------------------------------
# Table 1 / Figure 1 / Table 2 / Table 3
# ---------------------------------------------------------------------------

def experiment_table1(dataset):
    """Table 1: data set details."""
    stats = compute_statistics(dataset.triples)
    rows = [[label, value] for label, value in stats.rows()]
    return ExperimentResult(
        name="table1",
        title="Table 1: Data set details (synthetic scale model)",
        headers=["metric", "value"],
        rows=rows,
        notes=[
            f"scale model of the 50,255,599-triple Barton dump "
            f"({len(dataset.triples)} triples)"
        ],
    )


def experiment_figure1(dataset, sample_points=(1, 2, 5, 10, 13, 20, 40, 60, 80, 100)):
    """Figure 1: cumulative frequency distributions."""
    series = {}
    for component, label in (("p", "properties"), ("s", "subjects"), ("o", "objects")):
        x, y = cumulative_distribution(frequency_table(dataset.triples, component))
        values = []
        for point in sample_points:
            index = min(len(x) - 1, int(np.searchsorted(x, point)))
            values.append(round(float(y[index]), 1))
        series[label] = values
    return ExperimentResult(
        name="figure1",
        title="Figure 1: Cumulative frequency distribution "
              "(% of triples covered by top-x% of values)",
        headers=[],
        rows=[],
        series=series,
        x_values=list(sample_points),
        x_label="% of total *",
    )


def experiment_table2():
    """Table 2: coverage of the query space."""
    rows = []
    for name in BASE_QUERY_NAMES:
        triple_patterns, join_patterns = coverage_table()[name]
        rows.append(
            [name, ",".join(triple_patterns), ",".join(join_patterns) or "-"]
        )
    return ExperimentResult(
        name="table2",
        title="Table 2: Coverage of the query space",
        headers=["Query", "Triple patterns", "Join patterns"],
        rows=rows,
    )


def experiment_table3():
    """Table 3: machine configurations."""
    machine_rows = [m.table3_row() for m in MACHINES.values()]
    headers = ["field"] + [r["Machine"] for r in machine_rows]
    fields = [k for k in machine_rows[0] if k != "Machine"]
    rows = [[f] + [r[f] for r in machine_rows] for f in fields]
    return ExperimentResult(
        name="table3",
        title="Table 3: Machine configuration",
        headers=headers,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 4 / Table 5 / Figure 5 — the C-Store repetition
# ---------------------------------------------------------------------------

def experiment_table4(dataset, machines=("A", "B")):
    """Table 4: repetition of the C-Store experiment on machines A and B."""
    rows = []
    from repro.bench.metrics import geometric_mean

    for machine_name in machines:
        deployment = deploy(
            dataset, "C-Store", "vert", machine=MACHINES[machine_name]
        )
        runner = BenchmarkRunner(deployment.engine)
        for mode in ("cold", "hot"):
            cells = {}
            for query in INITIAL_QUERIES:
                result = runner.run(
                    query, deployment.executor(query), mode
                )
                cells[query] = TimingCell(
                    deployment.scaled_seconds(result.timing.real_seconds),
                    deployment.scaled_seconds(result.timing.user_seconds),
                )
            for clock in ("real", "user"):
                values = [getattr(cells[q], clock) for q in INITIAL_QUERIES]
                rows.append(
                    [f"{machine_name} {mode} {clock}"]
                    + [round(v, 2) for v in values]
                    + [round(geometric_mean(values), 1)]
                )
    return ExperimentResult(
        name="table4",
        title="Table 4: Repetition results (scaled seconds)",
        headers=["run"] + list(INITIAL_QUERIES) + ["G"],
        rows=rows,
    )


def experiment_table5(dataset, machine="A"):
    """Table 5: data read from disk and rows returned per query."""
    deployment = deploy(
        dataset, "C-Store", "vert", machine=MACHINES[machine]
    )
    runner = BenchmarkRunner(deployment.engine)
    rows = []
    for query in INITIAL_QUERIES:
        result = runner.run_cold(query, deployment.executor(query))
        scaled_mb = result.timing.bytes_read / deployment.scale / (1024 * 1024)
        rows.append([query, round(scaled_mb, 1), result.n_rows])
    return ExperimentResult(
        name="table5",
        title="Table 5: Data relevant to a query "
              "(scaled MB read from disk, rows returned)",
        headers=["query", "data read (MB, scaled)", "rows returned"],
        rows=rows,
        notes=["row counts are at synthetic scale and shrink with the "
               "dataset; MB are rescaled to paper scale"],
    )


def experiment_figure5(dataset, queries=("q3", "q5"), machines=("A", "B"),
                       n_samples=12):
    """Figure 5: I/O read history (cumulative MB over time) per machine."""
    results = []
    for query in queries:
        series = {}
        max_time = 0.0
        histories = {}
        for machine_name in machines:
            deployment = deploy(
                dataset, "C-Store", "vert", machine=MACHINES[machine_name]
            )
            runner = BenchmarkRunner(deployment.engine)
            runner.run_cold(query, deployment.executor(query))
            history = [
                (deployment.scaled_seconds(t), b / deployment.scale)
                for t, b in deployment.engine.io_history()
            ]
            histories[machine_name] = history
            max_time = max(max_time, history[-1][0])
        x_values = [
            round(max_time * i / (n_samples - 1), 2) for i in range(n_samples)
        ]
        for machine_name, history in histories.items():
            times = [t for t, _ in history]
            sizes = [b for _, b in history]
            values = []
            for x in x_values:
                index = int(np.searchsorted(times, x, side="right")) - 1
                values.append(round(sizes[max(index, 0)] / (1024 * 1024), 1))
            series[machine_name] = values
        results.append(
            ExperimentResult(
                name=f"figure5_{query}",
                title=f"Figure 5: I/O read history for {query} "
                      "(scaled MB read vs scaled seconds)",
                headers=[],
                rows=[],
                series=series,
                x_values=x_values,
                x_label="time (s)",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Tables 6 and 7 — the full grid
# ---------------------------------------------------------------------------

def experiment_table67(dataset, mode, machine=MACHINE_B, grid=SYSTEM_GRID):
    """Tables 6 (cold) / 7 (hot): every system x every query."""
    if mode not in ("cold", "hot"):
        raise BenchmarkError(f"mode must be cold or hot, not {mode!r}")
    rows = []
    measured = {}
    for config in grid:
        deployment = deploy(dataset, *config, machine=machine)
        runner = BenchmarkRunner(deployment.engine)
        cells = {}
        for query in ALL_QUERY_NAMES:
            if not deployment.supports(query):
                continue
            result = runner.run(query, deployment.executor(query), mode)
            cells[query] = TimingCell(
                deployment.scaled_seconds(result.timing.real_seconds),
                deployment.scaled_seconds(result.timing.user_seconds),
            )
        summary = summarize(cells)
        measured[config] = (cells, summary)
        for clock in ("real", "user"):
            row = [deployment.label(), clock]
            for query in ALL_QUERY_NAMES:
                cell = cells.get(query)
                row.append(
                    None if cell is None else round(getattr(cell, clock), 2)
                )
            g = summary[f"G_{clock}"]
            gstar = summary[f"Gstar_{clock}"]
            ratio = summary[f"ratio_{clock}"]
            row.extend(
                [
                    None if g is None else round(g, 2),
                    None if gstar is None else round(gstar, 2),
                    None if ratio is None else round(ratio, 2),
                ]
            )
            rows.append(row)
    table_number = 6 if mode == "cold" else 7
    result = ExperimentResult(
        name=f"table{table_number}",
        title=f"Table {table_number}: Experimental results for {mode} runs "
              "(scaled seconds)",
        headers=["system", "time"] + list(ALL_QUERY_NAMES)
        + ["G", "G*", "G*/G"],
        rows=rows,
    )
    result.measured = measured
    return result


def experiment_table6(dataset, machine=MACHINE_B, grid=SYSTEM_GRID):
    return experiment_table67(dataset, "cold", machine=machine, grid=grid)


def experiment_table7(dataset, machine=MACHINE_B, grid=SYSTEM_GRID):
    return experiment_table67(dataset, "hot", machine=machine, grid=grid)


# ---------------------------------------------------------------------------
# Figure 6 — time vs number of properties considered (28 .. 222)
# ---------------------------------------------------------------------------

def experiment_figure6(dataset, queries=("q2", "q3", "q4", "q6"),
                       property_counts=(28, 56, 84, 112, 140, 168, 196, 222),
                       machine=MACHINE_B, mode="cold"):
    """Figure 6: MonetDB, triple-PSO vs vertical, growing property scope."""
    property_counts = [
        k for k in property_counts if k <= len(dataset.properties)
    ]
    triple = deploy(dataset, "MonetDB", "triple", "PSO", machine=machine)
    vert = deploy(dataset, "MonetDB", "vert", machine=machine)

    # Auxiliary filter tables properties_<k> on the triple-store engine.
    catalogs = {}
    all_properties = triple.catalog.all_properties
    for k in property_counts:
        names = all_properties[:k]
        if k == len(all_properties):
            catalogs[k] = (triple.catalog, "all")
            continue
        table_name = f"properties_{k}"
        if not triple.engine.has_table(table_name):
            oids = np.asarray(
                [triple.catalog.dictionary.lookup(p) for p in names],
                dtype=np.int64,
            )
            triple.engine.create_table(
                table_name, {"prop": oids}, sort_by=["prop"]
            )
        catalogs[k] = (
            triple.catalog.with_properties(table_name, names),
            "interesting",
        )

    results = []
    for query in queries:
        series = {"triple": [], "vert": []}
        for k in property_counts:
            names = all_properties[:k]
            catalog_k, scope = catalogs[k]
            runner = BenchmarkRunner(triple.engine)
            from repro.queries import build_query

            plan = build_query(catalog_k, query, scope=scope)
            result = runner.run(query, lambda: triple.engine.run(plan), mode)
            series["triple"].append(
                round(triple.scaled_seconds(result.timing.real_seconds), 2)
            )
            runner = BenchmarkRunner(vert.engine)
            result = runner.run(
                query, vert.executor(query, scope=names), mode
            )
            series["vert"].append(
                round(vert.scaled_seconds(result.timing.real_seconds), 2)
            )
        results.append(
            ExperimentResult(
                name=f"figure6_{query}",
                title=f"Figure 6: {query} execution time vs number of "
                      "properties (MonetDB, scaled seconds)",
                headers=[],
                rows=[],
                series=series,
                x_values=list(property_counts),
                x_label="#properties",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 7 — scale-up by property splitting (222 .. 1000)
# ---------------------------------------------------------------------------

def experiment_figure7(dataset, queries=("q2*", "q3*", "q4*", "q6*"),
                       property_counts=(222, 400, 600, 800, 1000),
                       machine=MACHINE_B, mode="cold", seed=0):
    """Figure 7: splitting properties, triple vs vertical on MonetDB."""
    series = {}
    for query in queries:
        series[f"{query} vert"] = []
        series[f"{query} triple"] = []
    x_values = []
    base_count = len({t.p for t in dataset.triples})
    for target in property_counts:
        if target < base_count:
            continue
        if target == base_count:
            triples = dataset.triples
        else:
            triples, _ = split_properties(
                dataset.triples, target, seed=seed,
                protected=WELL_KNOWN_PROPERTIES,
                # The frequent head properties can absorb many splits; the
                # long tail saturates quickly (a 5-triple property cannot
                # produce 10 non-empty sub-properties).
                max_subproperties=50,
            )
        split = _SplitDataset(triples, dataset.interesting_properties)
        triple = deploy(split, "MonetDB", "triple", "PSO", machine=machine)
        vert = deploy(split, "MonetDB", "vert", machine=machine)
        x_values.append(target)
        for query in queries:
            for deployment, label in ((vert, "vert"), (triple, "triple")):
                runner = BenchmarkRunner(deployment.engine)
                result = runner.run(
                    query, deployment.executor(query), mode
                )
                series[f"{query} {label}"].append(
                    round(
                        deployment.scaled_seconds(result.timing.real_seconds),
                        2,
                    )
                )
    return ExperimentResult(
        name="figure7",
        title="Figure 7: Scalability experiment — splitting properties "
              "(MonetDB, scaled seconds)",
        headers=[],
        rows=[],
        series=series,
        x_values=x_values,
        x_label="#properties",
    )


class _SplitDataset:
    """Duck-typed dataset view over a transformed triple list."""

    def __init__(self, triples, interesting_properties):
        self.triples = triples
        self.interesting_properties = list(interesting_properties)

    def __len__(self):
        return len(self.triples)
