"""Experiment drivers: one function per table/figure of the paper.

Every driver returns an :class:`ExperimentResult` whose ``rows`` mirror the
layout of the corresponding paper table (or whose ``series`` mirror the
figure's curves), measured on the synthetic scale model.  Times are
reported in *scaled seconds* — simulated seconds divided by the dataset's
scale factor — which are directly comparable with the paper's numbers.
"""

from dataclasses import dataclass, field

from repro.bench.metrics import INITIAL_QUERIES, TimingCell, summarize
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import BenchmarkRunner
from repro.bench.systems import SYSTEM_GRID, Deployment, deploy, deploy_grid
from repro.data import compute_statistics, cumulative_distribution
from repro.data.barton import WELL_KNOWN_PROPERTIES
from repro.data.stats import frequency_table
from repro.engine import MACHINES, MACHINE_B
from repro.errors import BenchmarkError
from repro.queries import ALL_QUERY_NAMES, coverage_table
from repro.queries.definitions import BASE_QUERY_NAMES

import numpy as np


@dataclass
class ExperimentResult:
    """A regenerated table or figure.

    ``meta`` carries measurement metadata (wall-clock milliseconds, worker
    count) that rides along in JSON twins but never appears in the rendered
    table/figure — parallel and serial runs render byte-identically.

    ``storage`` carries the physical-design metrics of the deployments the
    experiment measured — ``storage_bytes``, ``compression_ratio`` and
    per-query ``bytes_scanned`` — so the BENCH JSON twins document the
    footprint behind the timings (deterministic, hence part of the
    regression-gated simulated section, unlike ``meta``).
    """

    name: str
    title: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)
    series: dict = field(default_factory=dict)
    x_values: list = field(default_factory=list)
    x_label: str = ""
    meta: dict = field(default_factory=dict)
    storage: dict = field(default_factory=dict)

    def render(self, chart=True):
        if self.series:
            text = format_series(
                self.x_label, self.x_values, self.series, title=self.title
            )
            if chart and len(self.x_values) > 1:
                from repro.bench.ascii_chart import line_chart

                text += "\n" + line_chart(
                    self.x_values, self.series, x_label=self.x_label
                )
        else:
            text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_dict(self):
        """JSON-safe form (cells coerced to plain scalars or strings)."""
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_value(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
            "series": {
                label: [_json_value(v) for v in values]
                for label, values in self.series.items()
            },
            "x_values": [_json_value(v) for v in self.x_values],
            "x_label": self.x_label,
            "meta": dict(self.meta),
            "storage": self.storage,
        }


def _json_value(value):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _deployment_storage(deployment):
    """Footprint metrics of one deployment for ``ExperimentResult.storage``."""
    engine = deployment.engine
    info = {
        "storage_bytes": int(engine.database_bytes()),
        "compression_mode": None,
        "compression_ratio": None,
    }
    report_fn = getattr(engine, "compression_report", None)
    report = report_fn() if report_fn is not None else None
    if report is not None:
        info["compression_mode"] = report["mode"]
        info["compression_ratio"] = round(report["compression_ratio"], 3)
    return info


# ---------------------------------------------------------------------------
# Table 1 / Figure 1 / Table 2 / Table 3
# ---------------------------------------------------------------------------

def experiment_table1(dataset):
    """Table 1: data set details."""
    stats = compute_statistics(dataset.triples)
    rows = [[label, value] for label, value in stats.rows()]
    return ExperimentResult(
        name="table1",
        title="Table 1: Data set details (synthetic scale model)",
        headers=["metric", "value"],
        rows=rows,
        notes=[
            f"scale model of the 50,255,599-triple Barton dump "
            f"({len(dataset.triples)} triples)"
        ],
    )


def experiment_figure1(dataset, sample_points=(1, 2, 5, 10, 13, 20, 40, 60, 80, 100)):
    """Figure 1: cumulative frequency distributions."""
    series = {}
    for component, label in (("p", "properties"), ("s", "subjects"), ("o", "objects")):
        x, y = cumulative_distribution(frequency_table(dataset.triples, component))
        values = []
        for point in sample_points:
            index = min(len(x) - 1, int(np.searchsorted(x, point)))
            values.append(round(float(y[index]), 1))
        series[label] = values
    return ExperimentResult(
        name="figure1",
        title="Figure 1: Cumulative frequency distribution "
              "(% of triples covered by top-x% of values)",
        headers=[],
        rows=[],
        series=series,
        x_values=list(sample_points),
        x_label="% of total *",
    )


def experiment_table2():
    """Table 2: coverage of the query space."""
    rows = []
    for name in BASE_QUERY_NAMES:
        triple_patterns, join_patterns = coverage_table()[name]
        rows.append(
            [name, ",".join(triple_patterns), ",".join(join_patterns) or "-"]
        )
    return ExperimentResult(
        name="table2",
        title="Table 2: Coverage of the query space",
        headers=["Query", "Triple patterns", "Join patterns"],
        rows=rows,
    )


def experiment_table3():
    """Table 3: machine configurations."""
    machine_rows = [m.table3_row() for m in MACHINES.values()]
    headers = ["field"] + [r["Machine"] for r in machine_rows]
    fields = [k for k in machine_rows[0] if k != "Machine"]
    rows = [[f] + [r[f] for r in machine_rows] for f in fields]
    return ExperimentResult(
        name="table3",
        title="Table 3: Machine configuration",
        headers=headers,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 4 / Table 5 / Figure 5 — the C-Store repetition
# ---------------------------------------------------------------------------

def _table4_cell(dataset, machine_name):
    """One Table 4 machine: every initial query, cold then hot."""
    deployment = deploy(
        dataset, "C-Store", "vert", machine=MACHINES[machine_name]
    )
    runner = BenchmarkRunner(deployment.engine)
    measured = {}
    for mode in ("cold", "hot"):
        cells = {}
        for query in INITIAL_QUERIES:
            result = runner.run(query, deployment.executor(query), mode)
            cells[query] = TimingCell(
                deployment.scaled_seconds(result.timing.real_seconds),
                deployment.scaled_seconds(result.timing.user_seconds),
            )
        measured[mode] = cells
    return measured


def experiment_table4(dataset, machines=("A", "B"), jobs=None):
    """Table 4: repetition of the C-Store experiment on machines A and B."""
    from repro.bench.metrics import geometric_mean
    from repro.bench.scheduler import map_cells, scheduler_meta

    values, outcomes = map_cells(
        _table4_cell, [(m,) for m in machines], dataset=dataset, jobs=jobs,
        labels=[f"table4:{m}" for m in machines],
    )
    rows = []
    for machine_name, measured in zip(machines, values):
        for mode in ("cold", "hot"):
            cells = measured[mode]
            for clock in ("real", "user"):
                series = [getattr(cells[q], clock) for q in INITIAL_QUERIES]
                rows.append(
                    [f"{machine_name} {mode} {clock}"]
                    + [round(v, 2) for v in series]
                    + [round(geometric_mean(series), 1)]
                )
    return ExperimentResult(
        name="table4",
        title="Table 4: Repetition results (scaled seconds)",
        headers=["run"] + list(INITIAL_QUERIES) + ["G"],
        rows=rows,
        meta=scheduler_meta(outcomes, jobs),
    )


def experiment_table5(dataset, machine="A"):
    """Table 5: data read from disk and rows returned per query."""
    deployment = deploy(
        dataset, "C-Store", "vert", machine=MACHINES[machine]
    )
    runner = BenchmarkRunner(deployment.engine)
    rows = []
    for query in INITIAL_QUERIES:
        result = runner.run_cold(query, deployment.executor(query))
        scaled_mb = result.timing.bytes_read / deployment.scale / (1024 * 1024)
        rows.append([query, round(scaled_mb, 1), result.n_rows])
    return ExperimentResult(
        name="table5",
        title="Table 5: Data relevant to a query "
              "(scaled MB read from disk, rows returned)",
        headers=["query", "data read (MB, scaled)", "rows returned"],
        rows=rows,
        notes=["row counts are at synthetic scale and shrink with the "
               "dataset; MB are rescaled to paper scale"],
    )


def _figure5_cell(dataset, query, machine_name):
    """One Figure 5 curve: the scaled I/O read history of a cold run."""
    deployment = deploy(
        dataset, "C-Store", "vert", machine=MACHINES[machine_name]
    )
    runner = BenchmarkRunner(deployment.engine)
    runner.run_cold(query, deployment.executor(query))
    return [
        (deployment.scaled_seconds(t), b / deployment.scale)
        for t, b in deployment.engine.io_history()
    ]


def experiment_figure5(dataset, queries=("q3", "q5"), machines=("A", "B"),
                       n_samples=12, jobs=None):
    """Figure 5: I/O read history (cumulative MB over time) per machine."""
    from repro.bench.scheduler import map_cells, scheduler_meta

    pairs = [(q, m) for q in queries for m in machines]
    values, outcomes = map_cells(
        _figure5_cell, pairs, dataset=dataset, jobs=jobs,
        labels=[f"figure5:{q}:{m}" for q, m in pairs],
    )
    histories = dict(zip(pairs, values))
    meta = scheduler_meta(outcomes, jobs)
    results = []
    for query in queries:
        series = {}
        max_time = max(histories[(query, m)][-1][0] for m in machines)
        x_values = [
            round(max_time * i / (n_samples - 1), 2) for i in range(n_samples)
        ]
        for machine_name in machines:
            history = histories[(query, machine_name)]
            times = [t for t, _ in history]
            sizes = [b for _, b in history]
            values = []
            for x in x_values:
                index = int(np.searchsorted(times, x, side="right")) - 1
                values.append(round(sizes[max(index, 0)] / (1024 * 1024), 1))
            series[machine_name] = values
        results.append(
            ExperimentResult(
                name=f"figure5_{query}",
                title=f"Figure 5: I/O read history for {query} "
                      "(scaled MB read vs scaled seconds)",
                headers=[],
                rows=[],
                series=series,
                x_values=x_values,
                x_label="time (s)",
                meta=meta,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Tables 6 and 7 — the full grid
# ---------------------------------------------------------------------------

def _table67_cell(dataset, config, mode, machine):
    """One Tables 6/7 system configuration: label + every query's cell."""
    deployment = deploy(dataset, *config, machine=machine)
    runner = BenchmarkRunner(deployment.engine)
    cells = {}
    for query in ALL_QUERY_NAMES:
        if not deployment.supports(query):
            continue
        result = runner.run(query, deployment.executor(query), mode)
        cells[query] = TimingCell(
            deployment.scaled_seconds(result.timing.real_seconds),
            deployment.scaled_seconds(result.timing.user_seconds),
        )
    return deployment.label(), cells


def experiment_table67(dataset, mode, machine=MACHINE_B, grid=SYSTEM_GRID,
                       jobs=None):
    """Tables 6 (cold) / 7 (hot): every system x every query.

    One scheduler cell per system configuration — each deploys its own
    engine, so cells are independent and run in parallel with ``jobs``
    workers, merging into the same table a serial run produces.
    """
    from repro.bench.scheduler import map_cells, scheduler_meta

    if mode not in ("cold", "hot"):
        raise BenchmarkError(f"mode must be cold or hot, not {mode!r}")
    values, outcomes = map_cells(
        _table67_cell, [(config, mode, machine) for config in grid],
        dataset=dataset, jobs=jobs,
        labels=["-".join(config) for config in grid],
    )
    rows = []
    measured = {}
    for config, (label, cells) in zip(grid, values):
        summary = summarize(cells)
        measured[config] = (cells, summary)
        for clock in ("real", "user"):
            row = [label, clock]
            for query in ALL_QUERY_NAMES:
                cell = cells.get(query)
                row.append(
                    None if cell is None else round(getattr(cell, clock), 2)
                )
            g = summary[f"G_{clock}"]
            gstar = summary[f"Gstar_{clock}"]
            ratio = summary[f"ratio_{clock}"]
            row.extend(
                [
                    None if g is None else round(g, 2),
                    None if gstar is None else round(gstar, 2),
                    None if ratio is None else round(ratio, 2),
                ]
            )
            rows.append(row)
    table_number = 6 if mode == "cold" else 7
    result = ExperimentResult(
        name=f"table{table_number}",
        title=f"Table {table_number}: Experimental results for {mode} runs "
              "(scaled seconds)",
        headers=["system", "time"] + list(ALL_QUERY_NAMES)
        + ["G", "G*", "G*/G"],
        rows=rows,
        meta=scheduler_meta(outcomes, jobs),
    )
    result.measured = measured
    return result


def experiment_table6(dataset, machine=MACHINE_B, grid=SYSTEM_GRID,
                      jobs=None):
    return experiment_table67(
        dataset, "cold", machine=machine, grid=grid, jobs=jobs
    )


def experiment_table7(dataset, machine=MACHINE_B, grid=SYSTEM_GRID,
                      jobs=None):
    return experiment_table67(
        dataset, "hot", machine=machine, grid=grid, jobs=jobs
    )


# ---------------------------------------------------------------------------
# Figure 6 — time vs number of properties considered (28 .. 222)
# ---------------------------------------------------------------------------

def _figure6_aux_catalogs(triple, property_counts):
    """The auxiliary ``properties_<k>`` filter tables, created idempotently.

    Every sweep point's table is created up front, in sweep order, before
    any query runs — the simulated disk lays segments out back-to-back, so
    a fixed creation order keeps the layout (and with it the sequential-
    seek accounting) identical no matter which sweep point a cell measures.
    The ``has_table`` guard makes repeated calls on the same engine no-ops
    instead of leaking duplicate tables across runs.
    """
    catalogs = {}
    all_properties = triple.catalog.all_properties
    for k in property_counts:
        names = all_properties[:k]
        if k == len(all_properties):
            catalogs[k] = (triple.catalog, "all")
            continue
        table_name = f"properties_{k}"
        if not triple.engine.has_table(table_name):
            oids = np.asarray(
                [triple.catalog.dictionary.lookup(p) for p in names],
                dtype=np.int64,
            )
            triple.engine.create_table(
                table_name, {"prop": oids}, sort_by=["prop"]
            )
        catalogs[k] = (
            triple.catalog.with_properties(table_name, names),
            "interesting",
        )
    return catalogs


def _figure6_cell(dataset, k, queries, property_counts, machine, mode):
    """One Figure 6 sweep point: all queries at property scope *k*.

    The cell deploys its own pair of engines, so parallel sweep points
    never share mutable state — the fix for the aux-table leak the shared-
    engine version had.
    """
    triple = deploy(dataset, "MonetDB", "triple", "PSO", machine=machine)
    vert = deploy(dataset, "MonetDB", "vert", machine=machine)
    catalogs = _figure6_aux_catalogs(triple, property_counts)
    names = triple.catalog.all_properties[:k]
    catalog_k, scope = catalogs[k]
    from repro.queries import build_query

    out = {}
    for query in queries:
        plan = build_query(catalog_k, query, scope=scope)
        runner = BenchmarkRunner(triple.engine)
        result = runner.run(query, lambda: triple.engine.run(plan), mode)
        triple_s = round(triple.scaled_seconds(result.timing.real_seconds), 2)
        triple_bytes = int(result.timing.bytes_read)
        runner = BenchmarkRunner(vert.engine)
        result = runner.run(query, vert.executor(query, scope=names), mode)
        vert_s = round(vert.scaled_seconds(result.timing.real_seconds), 2)
        vert_bytes = int(result.timing.bytes_read)
        out[query] = (triple_s, vert_s, triple_bytes, vert_bytes)
    storage = {
        "triple": _deployment_storage(triple),
        "vert": _deployment_storage(vert),
    }
    return out, storage


def experiment_figure6(dataset, queries=("q2", "q3", "q4", "q6"),
                       property_counts=(28, 56, 84, 112, 140, 168, 196, 222),
                       machine=MACHINE_B, mode="cold", jobs=None):
    """Figure 6: MonetDB, triple-PSO vs vertical, growing property scope."""
    from repro.bench.scheduler import map_cells, scheduler_meta

    property_counts = [
        k for k in property_counts if k <= len(dataset.properties)
    ]
    values, outcomes = map_cells(
        _figure6_cell,
        [
            (k, tuple(queries), tuple(property_counts), machine, mode)
            for k in property_counts
        ],
        dataset=dataset, jobs=jobs,
        labels=[f"figure6:k={k}" for k in property_counts],
    )
    per_point = dict(zip(property_counts, [v[0] for v in values]))
    # Every sweep point deploys the same full dataset (only the property
    # filter changes), so any point's footprint describes the whole figure.
    point_storage = values[0][1] if values else {}
    meta = scheduler_meta(outcomes, jobs)
    results = []
    for query in queries:
        series = {
            "triple": [per_point[k][query][0] for k in property_counts],
            "vert": [per_point[k][query][1] for k in property_counts],
        }
        storage = {
            label: dict(
                point_storage.get(label, {}),
                bytes_scanned=[
                    per_point[k][query][2 + offset] for k in property_counts
                ],
            )
            for offset, label in enumerate(("triple", "vert"))
        }
        results.append(
            ExperimentResult(
                name=f"figure6_{query}",
                title=f"Figure 6: {query} execution time vs number of "
                      "properties (MonetDB, scaled seconds)",
                headers=[],
                rows=[],
                series=series,
                x_values=list(property_counts),
                x_label="#properties",
                meta=meta,
                storage=storage,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figure 7 — scale-up by property splitting (222 .. 1000)
# ---------------------------------------------------------------------------

#: Figure 7 splits only down to sub-properties that still carry triples;
#: the frequent head properties can absorb many splits while the long tail
#: saturates quickly (a 5-triple property cannot produce 10 non-empty
#: sub-properties).
_FIGURE7_MAX_SUBPROPERTIES = 50


def _figure7_split(dataset, target, base_count, seed):
    """The (possibly cached) split dataset for one Figure 7 sweep point."""
    from repro.bench.artifacts import cached_split, dataset_cache_key

    base_key = dataset_cache_key(dataset)
    if target == base_count:
        return _SplitDataset(
            dataset.triples, dataset.interesting_properties,
            cache_params=base_key,
        )

    def materialize():
        triples, _ = cached_split(
            dataset, target, seed=seed, protected=WELL_KNOWN_PROPERTIES,
            max_subproperties=_FIGURE7_MAX_SUBPROPERTIES,
        )
        return triples

    cache_params = None
    if base_key is not None:
        cache_params = {
            "base": base_key,
            "split": {
                "target": target,
                "seed": seed,
                "protected": sorted(WELL_KNOWN_PROPERTIES),
                "max_subproperties": _FIGURE7_MAX_SUBPROPERTIES,
            },
        }
    # Splitting rewrites properties but never adds or drops triples, so the
    # view's length — all the scale model needs — is known up front.
    return _SplitDataset(
        materialize, dataset.interesting_properties,
        cache_params=cache_params, n_triples=len(dataset.triples),
    )


def _figure7_cell(dataset, target, base_count, queries, machine, mode, seed):
    """One Figure 7 sweep point: both schemes, all starred queries."""
    split = _figure7_split(dataset, target, base_count, seed)
    triple = deploy(split, "MonetDB", "triple", "PSO", machine=machine)
    vert = deploy(split, "MonetDB", "vert", machine=machine)
    out = {}
    scanned = {}
    for query in queries:
        for deployment, label in ((vert, "vert"), (triple, "triple")):
            runner = BenchmarkRunner(deployment.engine)
            result = runner.run(query, deployment.executor(query), mode)
            out[f"{query} {label}"] = round(
                deployment.scaled_seconds(result.timing.real_seconds), 2
            )
            scanned[f"{query} {label}"] = int(result.timing.bytes_read)
    storage = {
        "triple": _deployment_storage(triple),
        "vert": _deployment_storage(vert),
        "bytes_scanned": scanned,
    }
    return out, storage


def experiment_figure7(dataset, queries=("q2*", "q3*", "q4*", "q6*"),
                       property_counts=(222, 400, 600, 800, 1000),
                       machine=MACHINE_B, mode="cold", seed=0, jobs=None):
    """Figure 7: splitting properties, triple vs vertical on MonetDB."""
    from repro.bench.scheduler import map_cells, scheduler_meta

    base_count = len({t.p for t in dataset.triples})
    x_values = [t for t in property_counts if t >= base_count]
    values, outcomes = map_cells(
        _figure7_cell,
        [
            (target, base_count, tuple(queries), machine, mode, seed)
            for target in x_values
        ],
        dataset=dataset, jobs=jobs,
        labels=[f"figure7:p={target}" for target in x_values],
    )
    timings = [v[0] for v in values]
    per_point_storage = [v[1] for v in values]
    series = {}
    for query in queries:
        for label in ("vert", "triple"):
            series[f"{query} {label}"] = [
                point[f"{query} {label}"] for point in timings
            ]
    # Splitting changes the physical design per sweep point, so footprint
    # and bytes-scanned are series parallel to x_values.
    storage = {
        label: {
            "storage_bytes": [
                p[label]["storage_bytes"] for p in per_point_storage
            ],
            "compression_mode": (
                per_point_storage[0][label]["compression_mode"]
                if per_point_storage else None
            ),
            "compression_ratio": [
                p[label]["compression_ratio"] for p in per_point_storage
            ],
        }
        for label in ("triple", "vert")
    }
    storage["bytes_scanned"] = {
        key: [p["bytes_scanned"][key] for p in per_point_storage]
        for key in (per_point_storage[0]["bytes_scanned"]
                    if per_point_storage else ())
    }
    return ExperimentResult(
        name="figure7",
        title="Figure 7: Scalability experiment — splitting properties "
              "(MonetDB, scaled seconds)",
        headers=[],
        rows=[],
        series=series,
        x_values=x_values,
        x_label="#properties",
        meta=scheduler_meta(outcomes, jobs),
        storage=storage,
    )


# ---------------------------------------------------------------------------
# Compression sweep — footprint and scan speed, raw vs compressed
# ---------------------------------------------------------------------------

def experiment_compression(dataset, machine=MACHINE_B):
    """Compression sweep: storage footprint and scan-heavy query cost of the
    MonetDB-like engine, raw vs physically compressed.

    Not a paper figure — the paper's compression discussion (Section 4.2)
    reports footprints only.  This sweep adds the operate-on-compressed
    execution angle: a run-length-friendly scan query per scheme (a
    property-count aggregation over the PSO triples table, which lowers to
    the ``compressed-group`` kernel, and the q1 scan+select over the
    vertical scheme, which run-skips its property selects).
    """
    from repro.queries import build_query
    from repro.sql.planner import plan_sql

    rows = []
    storage = {}
    for scheme, config in (
        ("triple", ("MonetDB", "triple", "PSO")),
        ("vert", ("MonetDB", "vert", "SO")),
    ):
        for label, compression in (("raw", False), ("compressed", "physical")):
            deployment = deploy(
                dataset, *config, machine=machine, compression=compression
            )
            catalog = deployment.catalog
            if scheme == "triple":
                query_name = "prop-count"
                plan = plan_sql(
                    f"SELECT prop, COUNT(*) AS n FROM "
                    f"{catalog.triples_table} GROUP BY prop",
                    catalog,
                )
            else:
                query_name = "q1"
                plan = build_query(catalog, query_name)
            runner = BenchmarkRunner(deployment.engine)
            result = runner.run(
                query_name, lambda: deployment.engine.run(plan), "cold"
            )
            info = _deployment_storage(deployment)
            bytes_scanned = int(result.timing.bytes_read)
            rows.append([
                scheme,
                label,
                info["storage_bytes"],
                info["compression_ratio"],
                query_name,
                round(
                    deployment.scaled_seconds(result.timing.real_seconds), 4
                ),
                round(bytes_scanned / (1024 * 1024), 3),
            ])
            storage[f"{scheme}/{label}"] = dict(
                info, bytes_scanned=bytes_scanned
            )
    return ExperimentResult(
        name="compression",
        title="Compression sweep: footprint and scan cost, raw vs "
              "compressed (MonetDB, scaled seconds)",
        headers=["scheme", "config", "storage bytes", "ratio", "query",
                 "cold real (s)", "MB read"],
        rows=rows,
        storage=storage,
    )


# ---------------------------------------------------------------------------
# Scaling sweep — morsel-driven parallelism, wall-clock vs workers
# ---------------------------------------------------------------------------

def experiment_scaling(dataset, queries=("q2", "q3", "q4", "q6"),
                       worker_counts=(1, 2, 4), machine=MACHINE_B,
                       mode="cold"):
    """Scaling sweep: wall-clock effect of morsel-driven parallelism.

    Not a paper figure — the paper's engines are single-threaded.  The
    sweep runs the starred scan-heavy queries on the MonetDB-like engine
    at increasing intra-query degrees of parallelism.  Simulated timings
    are the *same number* at every worker count (the parallel runtime is
    deterministic by construction), so the rendered table carries one
    simulated column per query and the sweep's actual payload — wall-clock
    milliseconds per degree of parallelism plus morsel/steal counters —
    rides in ``meta``.  A worker count whose simulated timing deviates
    from the serial baseline fails the experiment outright.
    """
    import time

    from repro.exec.morsel import morsel_stats, reset_morsel_stats

    worker_counts = sorted({int(w) for w in worker_counts})
    if not worker_counts:
        raise BenchmarkError("scaling sweep needs at least one worker count")
    baseline = {}
    rows = []
    wall_ms = {}
    counters = {}
    for workers in worker_counts:
        reset_morsel_stats()
        vert = deploy(
            dataset, "MonetDB", "vert", machine=machine, workers=workers
        )
        triple = deploy(
            dataset, "MonetDB", "triple", "PSO", machine=machine,
            workers=workers,
        )
        wall = {}
        for query in queries:
            for deployment, label in ((vert, "vert"), (triple, "triple")):
                runner = BenchmarkRunner(deployment.engine)
                started = time.perf_counter()
                result = runner.run(query, deployment.executor(query), mode)
                wall[f"{query} {label}"] = round(
                    (time.perf_counter() - started) * 1000.0, 3
                )
                simulated = round(
                    deployment.scaled_seconds(result.timing.real_seconds), 4
                )
                key = f"{query} {label}"
                if workers == worker_counts[0]:
                    baseline[key] = simulated
                    rows.append([label, query, simulated])
                elif simulated != baseline[key]:
                    raise BenchmarkError(
                        f"parallel run diverged from the serial baseline: "
                        f"{key} at workers={workers} simulated {simulated}s "
                        f"vs {baseline[key]}s"
                    )
        wall_ms[str(workers)] = wall
        counters[str(workers)] = morsel_stats()
    return ExperimentResult(
        name="scaling",
        title="Scaling sweep: morsel-driven parallelism (MonetDB, "
              "simulated scaled seconds — identical at every worker count)",
        headers=["scheme", "query", f"{mode} real (s)"],
        rows=rows,
        notes=[
            "simulated timings are invariant across worker counts by "
            "construction; wall-clock per degree of parallelism rides in "
            "the JSON twin's meta"
        ],
        meta={
            "worker_counts": worker_counts,
            "wall_clock_ms": wall_ms,
            "parallel_counters": counters,
        },
    )


class _SplitDataset:
    """Duck-typed dataset view over a transformed triple list.

    ``cache_params`` is the content key the artifact cache uses to address
    store payloads built from this view (see
    :func:`repro.bench.artifacts.dataset_cache_key`); ``None`` makes the
    view uncacheable and every deploy builds fresh.

    *triples* may be a zero-argument materializer instead of a list; it is
    only invoked if something actually reads ``.triples`` (a store-payload
    cache miss).  Deploys served entirely from the artifact cache never pay
    for materializing the transformed triple list — pass ``n_triples`` so
    the 1:N scale factor stays computable without it.
    """

    def __init__(self, triples, interesting_properties, cache_params=None,
                 n_triples=None):
        if callable(triples):
            if n_triples is None:
                raise ValueError("lazy triples require an explicit n_triples")
            self._loader = triples
            self._triples = None
            self.n_triples = n_triples
        else:
            self._loader = None
            self._triples = triples
            self.n_triples = len(triples)
        self.interesting_properties = list(interesting_properties)
        self.cache_params = cache_params

    @property
    def triples(self):
        if self._triples is None:
            self._triples = self._loader()
            self._loader = None
        return self._triples

    def __len__(self):
        return self.n_triples
