"""Benchmark metrics: geometric means and the G / G* / G*÷G summary.

The paper summarizes each system row with the geometric mean over the
initial 7 queries (G), over all 12 queries including q8 and the full-scale
variants (G*), and reports the ratio G*/G as the indicator of how much a
storage scheme suffers when the property restriction is lifted.
"""

import math
from dataclasses import dataclass

from repro.errors import BenchmarkError

#: The 7 queries of the original benchmark (used for G).
INITIAL_QUERIES = ("q1", "q2", "q3", "q4", "q5", "q6", "q7")


def geometric_mean(values):
    """Geometric mean of positive numbers."""
    values = list(values)
    if not values:
        raise BenchmarkError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise BenchmarkError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class TimingCell:
    """One (query, system) cell: simulated real and user seconds."""

    real: float
    user: float

    @staticmethod
    def from_timing(timing):
        return TimingCell(timing.real_seconds, timing.user_seconds)


def summarize(cells):
    """Compute the G / G* / G*÷G columns from query -> TimingCell.

    ``G`` covers the initial 7 queries, ``G*`` everything present; queries
    absent from *cells* (e.g. C-Store's missing q8/stars) simply don't
    contribute, mirroring the dashes in the paper's tables.
    """
    real_all = [c.real for c in cells.values()]
    user_all = [c.user for c in cells.values()]
    initial = [cells[q] for q in INITIAL_QUERIES if q in cells]
    summary = {
        "G_real": geometric_mean([c.real for c in initial]) if initial else None,
        "G_user": geometric_mean([c.user for c in initial]) if initial else None,
    }
    extended = {q: c for q, c in cells.items()}
    if len(extended) > len(initial):
        summary["Gstar_real"] = geometric_mean(real_all)
        summary["Gstar_user"] = geometric_mean(user_all)
        summary["ratio_real"] = summary["Gstar_real"] / summary["G_real"]
        summary["ratio_user"] = summary["Gstar_user"] / summary["G_user"]
    else:
        summary["Gstar_real"] = None
        summary["Gstar_user"] = None
        summary["ratio_real"] = None
        summary["ratio_user"] = None
    return summary
