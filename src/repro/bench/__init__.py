"""Benchmark harness: the cold/hot protocol, metrics, and the experiment
drivers that regenerate every table and figure of the paper.

The conventions follow the paper's Section 2.3:

* **cold run** — the DBMS restarts and every cache is flushed before the
  query executes (here: :meth:`make_cold` clears the simulated buffer pool),
* **hot run** — the query ran once to load its data; measurements come from
  subsequent runs without clearing anything,
* **real time** — simulated wall clock on the server (CPU + synchronous
  I/O); **user time** — the CPU part alone,
* loading, clustering and index construction stay outside the measured
  window.
"""

from repro.bench.metrics import geometric_mean, TimingCell, summarize
from repro.bench.runner import BenchmarkRunner, RunResult
from repro.bench.reporting import format_table, format_series

__all__ = [
    "geometric_mean",
    "TimingCell",
    "summarize",
    "BenchmarkRunner",
    "RunResult",
    "format_table",
    "format_series",
]
