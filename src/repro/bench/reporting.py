"""Plain-text rendering of benchmark tables and figure series."""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    *rows* contain strings or numbers; floats print with 2-3 significant
    decimals like the paper's tables.
    """
    rendered = [[_cell(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                      for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(x_label, x_values, series, title=None):
    """Render figure data as aligned columns: x plus one column per series.

    *series* is an ordered mapping name -> list of y values.
    """
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _cell(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _numeric(cell):
    try:
        float(cell)
        return True
    except ValueError:
        return cell == "-"
