"""Plain-text line charts for the figure experiments.

The paper's figures are gnuplot line charts; the closest terminal-friendly
equivalent is a character grid with one marker per series.  The renderer is
deliberately simple: linear axes, per-series markers, a legend, and the
y-range annotated — enough to see the crossovers that the figures exist to
show.
"""

#: Per-series plot markers, assigned in series order.
MARKERS = "*+ox#@%&"


def line_chart(x_values, series, width=60, height=16, x_label="",
               y_label=""):
    """Render ``{name: [y...]}`` over *x_values* as an ASCII chart."""
    if not series or not x_values:
        return "(no data)"
    all_y = [y for ys in series.values() for y in ys if y is not None]
    if not all_y:
        return "(no data)"
    y_min = min(all_y)
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = min(x_values)
    x_max = max(x_values)
    if x_max == x_min:
        x_max = x_min + 1

    grid = [[" "] * width for _ in range(height)]

    def place(x, y, marker):
        column = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][column] = marker

    for index, (name, ys) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(x_values, ys):
            if y is not None:
                place(x, y, marker)

    lines = []
    if y_label:
        lines.append(y_label)
    top = f"{y_max:g}"
    bottom = f"{y_min:g}"
    margin = max(len(top), len(bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    gap = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 1) + x_left + " " * max(gap, 1) + x_right
    )
    if x_label:
        lines.append(" " * (margin + 1) + x_label)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
