"""The RDF query design space of the paper's Section 2.2 (Figure 2, Table 2).

A *simple triple query pattern* is a triple where any component may be a
variable; there are 8 combinations, named p1..p8:

====  ==============
name  pattern
====  ==============
p1    (s, p, o)
p2    (?s, p, o)
p3    (s, ?p, o)
p4    (s, p, ?o)
p5    (?s, ?p, o)
p6    (s, ?p, ?o)
p7    (?s, p, ?o)
p8    (?s, ?p, ?o)
====  ==============

Two patterns can be joined by equating components.  The three join patterns
the paper singles out (they form the RDF data graph):

* **A** — subject/subject join (``s = s'``),
* **B** — object/object join (``o = o'``),
* **C** — object/subject join (``o = s'`` or ``s = o'``).

This module classifies patterns and whole queries, and regenerates the
paper's Table 2 coverage matrix from the benchmark query definitions.
"""

from repro.model.triple import is_variable

#: Canonical names of the 8 simple patterns keyed by the bound-mask
#: ``(s_bound, p_bound, o_bound)``.
_PATTERN_BY_MASK = {
    (True, True, True): "p1",
    (False, True, True): "p2",
    (True, False, True): "p3",
    (True, True, False): "p4",
    (False, False, True): "p5",
    (True, False, False): "p6",
    (False, True, False): "p7",
    (False, False, False): "p8",
}

#: The 8 simple patterns in canonical order, as (name, mask) pairs.
SIMPLE_PATTERNS = sorted(
    ((name, mask) for mask, name in _PATTERN_BY_MASK.items()),
    key=lambda item: item[0],
)

#: Join pattern names with a human description (paper, Figure 2 right table).
JOIN_PATTERNS = {
    "A": "join on the subjects of two triples (s = s')",
    "B": "join on the objects of two triples (o = o')",
    "C": "join on the object of one triple and the subject of the other",
}


class TriplePattern:
    """A triple pattern with constants and variables.

    >>> from repro.model import Variable
    >>> TriplePattern(Variable("s"), "<type>", Variable("o")).simple_class()
    'p7'
    """

    __slots__ = ("s", "p", "o")

    def __init__(self, s, p, o):
        self.s = s
        self.p = p
        self.o = o

    def __iter__(self):
        yield self.s
        yield self.p
        yield self.o

    def __repr__(self):
        return f"TriplePattern({self.s!r}, {self.p!r}, {self.o!r})"

    def bound_mask(self):
        """``(s_bound, p_bound, o_bound)`` booleans."""
        return tuple(not is_variable(t) for t in self)

    def simple_class(self):
        """The p1..p8 name of this pattern."""
        return _PATTERN_BY_MASK[self.bound_mask()]

    def variables(self):
        """The set of variable names this pattern mentions."""
        return {t.name for t in self if is_variable(t)}


class JoinPattern:
    """An equality join between components of two triple patterns.

    *left* and *right* are component names, each one of ``"s"``, ``"p"``,
    ``"o"``, describing which component of the first and second pattern are
    equated.
    """

    __slots__ = ("left", "right")

    _COMPONENTS = ("s", "p", "o")

    def __init__(self, left, right):
        if left not in self._COMPONENTS or right not in self._COMPONENTS:
            raise ValueError("join components must be one of 's', 'p', 'o'")
        self.left = left
        self.right = right

    def __repr__(self):
        return f"JoinPattern({self.left!r}, {self.right!r})"

    def __eq__(self, other):
        return (
            isinstance(other, JoinPattern)
            and {self.left, self.right} == {other.left, other.right}
            and sorted((self.left, self.right))
            == sorted((other.left, other.right))
        )

    def __hash__(self):
        return hash(("JoinPattern", tuple(sorted((self.left, self.right)))))

    def classify(self):
        """Classify as join pattern 'A', 'B', 'C', or None for the
        RDF-Schema-level joins (s=p', o=p', ...) the paper sets aside."""
        pair = frozenset((self.left, self.right))
        if pair == frozenset(("s",)):
            return "A"
        if pair == frozenset(("o",)):
            return "B"
        if pair == frozenset(("s", "o")):
            return "C"
        return None


def classify_pattern(pattern):
    """Return the p1..p8 class of a pattern-like ``(s, p, o)`` object."""
    if not isinstance(pattern, TriplePattern):
        pattern = TriplePattern(*pattern)
    return pattern.simple_class()


def classify_join(patterns, shared_variable):
    """Classify the join realized by *shared_variable* across *patterns*.

    Returns the set of join-pattern names ('A', 'B', 'C') induced by the
    variable appearing in multiple patterns, considering every pair of
    occurrences.
    """
    occurrences = []
    for pat in patterns:
        if not isinstance(pat, TriplePattern):
            pat = TriplePattern(*pat)
        for component, term in zip(("s", "p", "o"), pat):
            if is_variable(term) and term.name == shared_variable:
                occurrences.append(component)
    classes = set()
    for i in range(len(occurrences)):
        for j in range(i + 1, len(occurrences)):
            cls = JoinPattern(occurrences[i], occurrences[j]).classify()
            if cls is not None:
                classes.add(cls)
    return classes


def query_coverage(patterns, join_variables=None):
    """Compute the (triple-pattern, join-pattern) coverage of a query.

    *patterns* is a sequence of triple patterns; *join_variables* restricts
    which variables are treated as join variables (default: every variable
    appearing in two or more patterns).

    Returns ``(triple_classes, join_classes)`` — two sorted lists, directly
    comparable against the rows of the paper's Table 2.
    """
    patterns = [
        p if isinstance(p, TriplePattern) else TriplePattern(*p) for p in patterns
    ]
    triple_classes = sorted({p.simple_class() for p in patterns})

    if join_variables is None:
        counts = {}
        for p in patterns:
            for name in p.variables():
                counts[name] = counts.get(name, 0) + 1
        join_variables = {name for name, n in counts.items() if n >= 2}

    join_classes = set()
    for name in join_variables:
        join_classes |= classify_join(patterns, name)
    return triple_classes, sorted(join_classes)


def design_space_size():
    """Total number of simplest two-pattern join queries (paper: 2^4 x 6^2... ).

    The paper counts: 6 ways to equate components of two triples, and for
    each combination 4 remaining terms that are either a target variable or a
    constant, i.e. ``2**4 * 6**2`` patterns "to consider for even the
    simplest queries".  We expose the same arithmetic for the docs/tests.
    """
    return (2**4) * (6**2)
