"""In-memory RDF graph with naive-but-correct pattern matching.

:class:`RDFGraph` is *not* one of the engines under evaluation.  It is the
loading intermediary and, above all, the **reference evaluator**: the
integration tests run every benchmark query against it with straightforward
nested-loop semantics and require each engine to return the same result set.
"""

from collections import defaultdict

from repro.model.triple import Triple, is_variable


class RDFGraph:
    """A set of triples with hash indexes on each component.

    The indexes (by subject, by property, by object) make single-pattern
    lookups fast enough to use as a test oracle on datasets of a few hundred
    thousand triples.
    """

    def __init__(self, triples=()):
        self._triples = []
        self._by_s = defaultdict(list)
        self._by_p = defaultdict(list)
        self._by_o = defaultdict(list)
        self._seen = set()
        for t in triples:
            self.add(t)

    def __len__(self):
        return len(self._triples)

    def __iter__(self):
        return iter(self._triples)

    def __contains__(self, triple):
        if isinstance(triple, tuple):
            triple = Triple(*triple)
        return triple.as_tuple() in self._seen

    def add(self, triple):
        """Add a triple (tuples are accepted); duplicates are ignored.

        RDF graphs are sets of statements, so a duplicate insert is a no-op.
        Returns True when the triple was new.
        """
        if isinstance(triple, tuple):
            triple = Triple(*triple)
        key = triple.as_tuple()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._triples.append(triple)
        self._by_s[triple.s].append(triple)
        self._by_p[triple.p].append(triple)
        self._by_o[triple.o].append(triple)
        return True

    def extend(self, triples):
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    # ------------------------------------------------------------------
    # statistics used by repro.data.stats
    # ------------------------------------------------------------------

    def subjects(self):
        """Distinct subjects."""
        return self._by_s.keys()

    def properties(self):
        """Distinct properties."""
        return self._by_p.keys()

    def objects(self):
        """Distinct objects."""
        return self._by_o.keys()

    def property_counts(self):
        """Mapping property -> number of triples carrying it."""
        return {p: len(ts) for p, ts in self._by_p.items()}

    def subject_counts(self):
        return {s: len(ts) for s, ts in self._by_s.items()}

    def object_counts(self):
        return {o: len(ts) for o, ts in self._by_o.items()}

    # ------------------------------------------------------------------
    # pattern matching (reference semantics)
    # ------------------------------------------------------------------

    def match(self, s=None, p=None, o=None):
        """Yield triples matching the given constants.

        ``None`` (or a :class:`~repro.model.triple.Variable`) means
        unconstrained.  The most selective available index is used.
        """
        s = None if is_variable(s) else s
        p = None if is_variable(p) else p
        o = None if is_variable(o) else o

        candidates = self._candidates(s, p, o)
        for t in candidates:
            if s is not None and t.s != s:
                continue
            if p is not None and t.p != p:
                continue
            if o is not None and t.o != o:
                continue
            yield t

    def _candidates(self, s, p, o):
        pools = []
        if s is not None:
            pools.append(self._by_s.get(s, ()))
        if p is not None:
            pools.append(self._by_p.get(p, ()))
        if o is not None:
            pools.append(self._by_o.get(o, ()))
        if not pools:
            return self._triples
        return min(pools, key=len)

    def solve(self, patterns):
        """Evaluate a conjunction of triple patterns, returning bindings.

        *patterns* is a sequence of ``(s, p, o)`` items whose components are
        constants or :class:`Variable` instances.  Returns a list of
        ``{variable_name: value}`` dicts — one per solution, with duplicates
        preserved (bag semantics, matching SQL).
        """
        solutions = [{}]
        for pattern in patterns:
            solutions = list(self._extend_solutions(solutions, pattern))
        return solutions

    def _extend_solutions(self, solutions, pattern):
        s, p, o = pattern
        for binding in solutions:
            bound = [
                binding.get(t.name) if is_variable(t) else t for t in (s, p, o)
            ]
            for t in self.match(*bound):
                new_binding = dict(binding)
                ok = True
                for term, value in zip((s, p, o), (t.s, t.p, t.o)):
                    if is_variable(term):
                        existing = new_binding.get(term.name)
                        if existing is not None and existing != value:
                            ok = False
                            break
                        new_binding[term.name] = value
                if ok:
                    yield new_binding
