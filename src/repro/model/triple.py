"""Triples and variables.

A triple is a statement about a subject ``s`` that has a property ``p`` whose
value is an object ``o`` (paper, Section 2.2).  Terms are plain strings;
variables are :class:`Variable` instances (conventionally written ``?s``,
``?p``, ``?o``).
"""


class Variable:
    """A query variable, e.g. ``Variable("s")`` rendered as ``?s``.

    Variables are compared by name so that two patterns mentioning ``?x``
    refer to the same binding slot.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        if not name or not isinstance(name, str):
            raise ValueError("variable name must be a non-empty string")
        self.name = name.lstrip("?")

    def __repr__(self):
        return f"?{self.name}"

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("Variable", self.name))


def is_variable(term):
    """True when *term* is a query variable rather than a constant."""
    return isinstance(term, Variable)


class Triple:
    """An immutable ``(subject, property, object)`` statement.

    The three components are exposed as ``s``, ``p`` and ``o`` and the triple
    behaves like a 3-tuple (iteration, indexing, equality), which keeps the
    loaders and the reference evaluator simple.
    """

    __slots__ = ("s", "p", "o")

    def __init__(self, s, p, o):
        self.s = s
        self.p = p
        self.o = o

    def __iter__(self):
        yield self.s
        yield self.p
        yield self.o

    def __getitem__(self, index):
        return (self.s, self.p, self.o)[index]

    def __len__(self):
        return 3

    def __eq__(self, other):
        if isinstance(other, Triple):
            return (self.s, self.p, self.o) == (other.s, other.p, other.o)
        if isinstance(other, tuple):
            return (self.s, self.p, self.o) == other
        return NotImplemented

    def __hash__(self):
        return hash((self.s, self.p, self.o))

    def __repr__(self):
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"

    def as_tuple(self):
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self.s, self.p, self.o)
