"""RDF data model: terms, triples, graphs, and the query design space.

This package implements the data-model layer the paper's Section 2 reasons
about: triples ``(s, p, o)``, the eight simple triple query patterns p1-p8,
the three join patterns A/B/C, and a naive in-memory graph used both as a
loading intermediary and as the *reference evaluator* that every engine is
tested against.
"""

from repro.model.triple import Triple, Variable, is_variable
from repro.model.graph import RDFGraph
from repro.model.parser import (
    parse_ntriples,
    parse_ntriples_file,
    parse_ntriples_text,
    serialize_ntriples,
    write_ntriples_file,
)
from repro.model.patterns import (
    TriplePattern,
    JoinPattern,
    JOIN_PATTERNS,
    SIMPLE_PATTERNS,
    classify_pattern,
    classify_join,
)

__all__ = [
    "Triple",
    "Variable",
    "is_variable",
    "RDFGraph",
    "parse_ntriples",
    "parse_ntriples_file",
    "parse_ntriples_text",
    "serialize_ntriples",
    "write_ntriples_file",
    "TriplePattern",
    "JoinPattern",
    "JOIN_PATTERNS",
    "SIMPLE_PATTERNS",
    "classify_pattern",
    "classify_join",
]
