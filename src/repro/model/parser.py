"""A small N-Triples-style parser and serializer.

The Barton Libraries dump the paper uses is distributed as N-Triples.  This
module implements the subset needed for the reproduction:

* one triple per line: ``<subject> <property> <object> .`` or
  ``<subject> <property> "literal" .``
* ``#`` comment lines and blank lines are skipped,
* literals may contain escaped quotes (``\\"``) and backslashes.

Terms keep their surface syntax (angle brackets / quotes) as part of the
string, matching the paper's convention of writing constants like
``'<type>'`` and ``'"end"'`` in the benchmark SQL.
"""

from repro.errors import ParseError
from repro.model.triple import Triple


def parse_ntriples(lines):
    """Yield :class:`Triple` objects from an iterable of N-Triples lines."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, lineno)


def parse_ntriples_text(text):
    """Parse a complete N-Triples document, returning a list of triples."""
    return list(parse_ntriples(text.splitlines()))


def serialize_ntriples(triples):
    """Render an iterable of triples back to N-Triples text."""
    return "".join(f"{t.s} {t.p} {t.o} .\n" for t in triples)


def parse_ntriples_file(path):
    """Parse an N-Triples file (``.gz`` paths are decompressed on the fly).

    Returns a list of triples; parsing streams line by line, so large dumps
    never hold two representations in memory at once.
    """
    import gzip

    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        return list(parse_ntriples(handle))


def write_ntriples_file(triples, path):
    """Write triples to an N-Triples file (``.gz`` paths are compressed)."""
    import gzip

    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "wt", encoding="utf-8") as handle:
        for t in triples:
            handle.write(f"{t.s} {t.p} {t.o} .\n")


def _parse_line(line, lineno):
    terms = []
    pos = 0
    length = len(line)
    while pos < length and len(terms) < 3:
        ch = line[pos]
        if ch == " " or ch == "\t":
            pos += 1
        elif ch == "<":
            end = line.find(">", pos)
            if end < 0:
                raise ParseError("unterminated IRI", line=lineno, column=pos + 1)
            terms.append(line[pos : end + 1])
            pos = end + 1
        elif ch == '"':
            end = _scan_literal(line, pos, lineno)
            terms.append(line[pos : end + 1])
            pos = end + 1
        else:
            raise ParseError(
                f"unexpected character {ch!r}", line=lineno, column=pos + 1
            )
    rest = line[pos:].strip()
    if len(terms) != 3 or rest != ".":
        raise ParseError("expected '<s> <p> <o> .'", line=lineno)
    return Triple(*terms)


def _scan_literal(line, start, lineno):
    """Return the index of the closing quote of a literal starting at *start*."""
    pos = start + 1
    while pos < len(line):
        ch = line[pos]
        if ch == "\\":
            pos += 2
            continue
        if ch == '"':
            return pos
        pos += 1
    raise ParseError("unterminated literal", line=lineno, column=start + 1)
