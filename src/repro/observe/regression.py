"""Per-metric regression policies over run records and bench JSON twins.

Different metrics deserve different gates.  The simulated costs are pure
functions of (code, configuration) — any drift is a real behaviour change,
so they are compared **byte-identically** on canonical JSON.  Wall-clock is
noisy hardware measurement, so it gets a configurable **ratio tolerance**
(and the benchmark harness reduces the noise at the source with min-of-N
repeats, ``REPRO_BENCH_REPEATS``).  The always-on counters are
**informational**: they explain a wall-clock change (cache stopped
hitting, buffer pool thrashing) but never gate on their own.

:func:`compare_records` applies the policies to two
:class:`~repro.observe.history.RunRecord` snapshots;
:func:`compare_bench_documents` applies them to raw ``repro bench --json``
documents (which is what ``scripts/compare_bench_json.py`` delegates to).
Both return a :class:`PerfComparison` whose ``ok`` decides the process
exit code of ``repro perf compare``.
"""

import json
from dataclasses import dataclass, field

from repro.observe.history import strip_meta

#: Default wall-clock tolerance: the current run may be up to 1.5x slower
#: than baseline before the gate trips.
DEFAULT_WALL_TOLERANCE = 1.5

#: Diff statuses, from worst to best.
FAIL, INFO, OK, SKIP = "fail", "info", "ok", "skip"


def canonical_json(document):
    """The byte-identity representation: sorted keys, fixed separators."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def first_difference(left, right, path="$"):
    """Human-readable path of the first structural difference, or ``None``.

    Walks both documents in parallel so a byte-identity failure can name
    the exact leaf that drifted instead of printing two JSON blobs.
    """
    if type(left) is not type(right):
        return f"{path}: type {type(left).__name__} != {type(right).__name__}"
    if isinstance(left, dict):
        left_keys, right_keys = sorted(left), sorted(right)
        if left_keys != right_keys:
            only_left = [k for k in left_keys if k not in right]
            only_right = [k for k in right_keys if k not in left]
            return (
                f"{path}: keys differ"
                f" (baseline-only {only_left}, current-only {only_right})"
            )
        for key in left_keys:
            found = first_difference(left[key], right[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(left, list):
        if len(left) != len(right):
            return f"{path}: length {len(left)} != {len(right)}"
        for i, (a, b) in enumerate(zip(left, right)):
            found = first_difference(a, b, f"{path}[{i}]")
            if found:
                return found
        return None
    if left != right:
        return f"{path}: {left!r} != {right!r}"
    return None


@dataclass
class MetricDiff:
    """One compared metric: its policy, verdict, and both values."""

    metric: str
    policy: str            # "byte-identity" | "tolerance" | "info"
    status: str            # FAIL | INFO | OK | SKIP
    baseline: object = None
    current: object = None
    detail: str = ""

    def to_dict(self):
        return {
            "metric": self.metric,
            "policy": self.policy,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "detail": self.detail,
        }

    def render(self):
        verdict = self.status.upper()
        line = f"[{verdict:<4}] {self.metric} ({self.policy})"
        if self.detail:
            line += f": {self.detail}"
        return line


@dataclass
class PerfComparison:
    """The outcome of one baseline-vs-current comparison."""

    name: str
    diffs: list = field(default_factory=list)

    @property
    def ok(self):
        return all(diff.status != FAIL for diff in self.diffs)

    @property
    def identical(self):
        """True when every gated and informational value matched."""
        return all(diff.status in (OK, SKIP) for diff in self.diffs)

    def failures(self):
        return [diff for diff in self.diffs if diff.status == FAIL]

    def to_dict(self):
        return {
            "name": self.name,
            "ok": self.ok,
            "diffs": [diff.to_dict() for diff in self.diffs],
        }

    def render(self):
        lines = [f"perf compare: {self.name}"]
        lines.extend("  " + diff.render() for diff in self.diffs)
        lines.append(
            "  => " + ("OK" if self.ok else
                       f"REGRESSION ({len(self.failures())} gate(s) tripped)")
        )
        return "\n".join(lines)


def _diff_simulated(baseline, current):
    """Byte-identity gate over the simulated sections."""
    left, right = canonical_json(baseline), canonical_json(current)
    if left == right:
        return MetricDiff(
            "simulated", "byte-identity", OK,
            detail=f"{len(left)} canonical bytes identical",
        )
    where = first_difference(baseline, current) or "documents differ"
    return MetricDiff(
        "simulated", "byte-identity", FAIL,
        detail=f"simulated costs drifted at {where}",
    )


def _diff_wall(baseline_ms, current_ms, tolerance, gate):
    """Ratio-tolerance gate over wall-clock milliseconds."""
    policy = "tolerance" if gate else "info"
    if baseline_ms is None or current_ms is None:
        return MetricDiff(
            "wall_ms", policy, SKIP, baseline_ms, current_ms,
            "wall-clock missing on one side",
        )
    if baseline_ms <= 0:
        return MetricDiff(
            "wall_ms", policy, SKIP, baseline_ms, current_ms,
            "baseline wall-clock is zero",
        )
    ratio = current_ms / baseline_ms
    detail = (
        f"{current_ms:.1f}ms vs {baseline_ms:.1f}ms "
        f"({ratio:.2f}x, tolerance {tolerance:.2f}x)"
    )
    if ratio <= tolerance:
        return MetricDiff(
            "wall_ms", policy, OK if gate else INFO,
            baseline_ms, current_ms, detail,
        )
    return MetricDiff(
        "wall_ms", policy, FAIL if gate else INFO,
        baseline_ms, current_ms, detail,
    )


def _diff_counters(baseline, current):
    """Informational rows for the always-on counter groups."""
    diffs = []
    for group in sorted(set(baseline) | set(current)):
        left = baseline.get(group)
        right = current.get(group)
        if left == right:
            continue
        diffs.append(MetricDiff(
            f"counters.{group}", "info", INFO, left, right,
            first_difference(left, right) or "",
        ))
    return diffs


def compare_records(baseline, current, wall_tolerance=DEFAULT_WALL_TOLERANCE,
                    wall_gate=True):
    """Compare two :class:`~repro.observe.history.RunRecord` snapshots.

    Policies: simulated costs byte-identical (always gated); wall-clock
    within *wall_tolerance* (gated unless ``wall_gate=False`` — CI keeps
    wall informational because shared runners are too noisy to gate on);
    counters informational.  A configuration-fingerprint mismatch is
    itself a failure: gating across different configurations compares
    apples to oranges.
    """
    comparison = PerfComparison(name=current.name)
    if baseline.config_fingerprint != current.config_fingerprint:
        comparison.diffs.append(MetricDiff(
            "config_fingerprint", "byte-identity", FAIL,
            baseline.config_fingerprint, current.config_fingerprint,
            "runs measured different configurations; re-record the baseline",
        ))
        comparison.diffs.append(MetricDiff(
            "simulated", "byte-identity", SKIP,
            detail="skipped: configurations differ",
        ))
        return comparison
    comparison.diffs.append(
        _diff_simulated(baseline.simulated, current.simulated)
    )
    comparison.diffs.append(
        _diff_wall(baseline.wall_ms, current.wall_ms, wall_tolerance,
                   wall_gate)
    )
    comparison.diffs.extend(_diff_counters(baseline.counters,
                                           current.counters))
    return comparison


def _document_wall_ms(documents):
    """Sum of per-result ``meta.wall_ms`` in a bench JSON list, or None."""
    total = 0.0
    found = False
    for document in documents:
        meta = document.get("meta") or {}
        if "wall_ms" in meta:
            total += meta["wall_ms"]
            found = True
    return round(total, 3) if found else None


def compare_bench_documents(baseline, current, name="bench",
                            wall_tolerance=DEFAULT_WALL_TOLERANCE,
                            wall_gate=False):
    """Compare two raw ``repro bench --json`` documents (lists of result
    dicts).  Simulated content is everything outside ``meta`` blocks —
    byte-identity applies after stripping them; wall-clock is the summed
    ``meta.wall_ms``, informational by default (the script's historical
    behaviour was equality-only)."""
    if not isinstance(baseline, list) or not isinstance(current, list):
        raise ValueError("bench documents must be JSON lists of results")
    comparison = PerfComparison(name=name)
    comparison.diffs.append(_diff_simulated(
        strip_meta(baseline), strip_meta(current)
    ))
    comparison.diffs.append(_diff_wall(
        _document_wall_ms(baseline), _document_wall_ms(current),
        wall_tolerance, wall_gate,
    ))
    return comparison
