"""The run-history ledger: every benchmark/profile run as a structured record.

The paper's argument rests on comparable timings, so the reproduction keeps
a persistent record of its own performance.  A :class:`RunRecord` captures
one run of a benchmark experiment (or one profiled query): the git sha and
a config fingerprint that make it attributable, the **simulated** costs
that must never drift (byte-identity-gated by
:mod:`repro.observe.regression`), the wall-clock cost of the harness
itself, and the always-on counters threaded through the engines — buffer
pool hits/misses, artifact-cache hits/misses, lowering-cache stats,
scheduler cell counts.

Records are appended to a JSONL ledger under ``.repro/perf/``
(:class:`RunLedger`; override with ``REPRO_PERF_DIR``) and emitted as
repo-root ``BENCH_<name>.json`` snapshots (:func:`write_snapshot`) that CI
uploads and gates on.  ``repro perf record / compare / report`` are the CLI
entry points.
"""

import hashlib
import json
import os
import pathlib
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.observe.log import get_logger
from repro.observe.trace import CPU, IO, REQUESTS, SEEK, TRANSFER

log = get_logger("observe.history")

HISTORY_SCHEMA_VERSION = 1

#: Environment knob: where the ledger lives (default ``.repro/perf``).
PERF_DIR_ENV = "REPRO_PERF_DIR"


def default_perf_dir():
    env = os.environ.get(PERF_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path(".repro") / "perf"


def git_sha(cwd=None):
    """HEAD commit sha of the working tree, or ``None`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def config_fingerprint(parameters):
    """SHA-256 over the canonical JSON of the run parameters.

    Two runs with equal fingerprints measured the same configuration, so
    their simulated costs are comparable byte-for-byte; the regression
    engine refuses to gate across differing fingerprints.
    """
    canonical = json.dumps(
        {"schema": HISTORY_SCHEMA_VERSION, "parameters": parameters},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def collect_counters():
    """The always-on process-wide counters, one group per subsystem."""
    from repro.bench.artifacts import cache_stats
    from repro.bench.scheduler import scheduler_stats
    from repro.engine.buffer import global_stats, hit_ratio
    from repro.exec.morsel import morsel_stats
    from repro.exec.runtime import global_lowering_cache_stats
    from repro.storage.compress import compress_stats

    buffer_pool = global_stats()
    buffer_pool["hit_ratio"] = hit_ratio(buffer_pool)
    compression = compress_stats()
    compression["compression_ratio"] = (
        compression["logical_bytes"] / compression["compressed_bytes"]
        if compression["compressed_bytes"] else 1.0
    )
    return {
        "buffer_pool": buffer_pool,
        "artifact_cache": cache_stats(),
        "lowering_cache": global_lowering_cache_stats(),
        "scheduler": scheduler_stats(),
        "compression": compression,
        "parallel": morsel_stats(),
    }


def reset_counters():
    """Zero every process-wide counter group so a recorded run's counters
    cover exactly that run."""
    from repro.bench.scheduler import reset_scheduler_stats
    from repro.engine.buffer import reset_global_stats
    from repro.exec.morsel import reset_morsel_stats
    from repro.exec.runtime import reset_lowering_cache_stats
    from repro.storage.compress import reset_compress_stats

    reset_global_stats()
    reset_lowering_cache_stats()
    reset_scheduler_stats()
    reset_compress_stats()
    reset_morsel_stats()


def strip_meta(document):
    """Drop every ``meta`` key — the wall-clock/worker metadata that may
    differ between byte-identical runs (same rule the serial-vs-parallel
    comparison has always used)."""
    if isinstance(document, dict):
        return {
            key: strip_meta(value)
            for key, value in document.items()
            if key != "meta"
        }
    if isinstance(document, list):
        return [strip_meta(item) for item in document]
    return document


@dataclass
class RunRecord:
    """One ledger entry: a benchmark or profile run.

    ``simulated`` holds everything that must be byte-identical between
    runs of the same configuration; ``wall_ms`` and ``counters`` are
    measurement metadata the regression engine treats under looser
    policies (tolerance-gated and informational respectively).
    """

    name: str
    kind: str = "bench"          # "bench" | "profile"
    recorded_at: str = ""
    git_sha: object = None
    config_fingerprint: str = ""
    parameters: dict = field(default_factory=dict)
    simulated: object = None
    wall_ms: object = None
    counters: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    schema_version: int = HISTORY_SCHEMA_VERSION

    def to_dict(self):
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "kind": self.kind,
            "recorded_at": self.recorded_at,
            "git_sha": self.git_sha,
            "config_fingerprint": self.config_fingerprint,
            "parameters": dict(self.parameters),
            "simulated": self.simulated,
            "wall_ms": self.wall_ms,
            "counters": dict(self.counters),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, document):
        known = {
            "name", "kind", "recorded_at", "git_sha", "config_fingerprint",
            "parameters", "simulated", "wall_ms", "counters", "notes",
            "schema_version",
        }
        fields = {k: v for k, v in document.items() if k in known}
        missing = sorted(
            k for k in ("name", "simulated") if k not in fields
        )
        if missing:
            raise ValueError(f"run record is missing {missing}")
        return cls(**fields)


def _now_iso():
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def record_from_results(name, results, parameters=None, notes=()):
    """Build a :class:`RunRecord` from a list of
    :class:`~repro.bench.experiments.ExperimentResult`.

    The simulated section is the meta-stripped JSON of every result (the
    part serial/parallel byte-identity has always covered); ``wall_ms``
    sums the scheduler's per-cell wall clock where present.
    """
    parameters = dict(parameters or {})
    documents = [r.to_dict() for r in results]
    wall = 0.0
    has_wall = False
    for document in documents:
        meta = document.get("meta") or {}
        if "wall_ms" in meta:
            wall += meta["wall_ms"]
            has_wall = True
    return RunRecord(
        name=name,
        kind="bench",
        recorded_at=_now_iso(),
        git_sha=git_sha(),
        config_fingerprint=config_fingerprint(parameters),
        parameters=parameters,
        simulated=strip_meta(documents),
        wall_ms=round(wall, 3) if has_wall else None,
        counters=collect_counters(),
        notes=list(notes),
    )


def record_from_profile(name, profile, parameters=None, notes=()):
    """Build a :class:`RunRecord` from a
    :class:`~repro.observe.profiler.QueryProfile`.

    The simulated section carries the query's total simulated cost plus
    per-operator span **self** times — the exact decomposition whose sum
    equals the clock charge — so an operator-level drift is as visible as
    a total drift.
    """
    parameters = dict(parameters or {})
    parameters.setdefault("query", profile.query)
    parameters.setdefault("engine", profile.engine_kind)
    parameters.setdefault("mode", profile.mode)
    timing = profile.timing
    spans = []
    for span in profile.root.walk():
        spans.append({
            "operator": span.name,
            "calls": span.calls,
            "rows": span.rows,
            "self_cpu_seconds": span.self_sim[CPU],
            "self_io_seconds": span.self_sim[IO],
            "self_seek_seconds": span.self_sim[SEEK],
            "self_transfer_seconds": span.self_sim[TRANSFER],
            "self_io_requests": int(span.self_sim[REQUESTS]),
        })
    simulated = {
        "totals": {
            "n_rows": profile.n_rows,
            "real_seconds": timing.real_seconds,
            "user_seconds": timing.user_seconds,
            "seek_seconds": timing.seek_seconds,
            "transfer_seconds": timing.transfer_seconds,
            "bytes_read": timing.bytes_read,
            "io_requests": timing.io_requests,
        },
        "spans": spans,
    }
    wall_ms = round(profile.root.wall_inclusive() * 1000.0, 3)
    return RunRecord(
        name=name,
        kind="profile",
        recorded_at=_now_iso(),
        git_sha=git_sha(),
        config_fingerprint=config_fingerprint(parameters),
        parameters=parameters,
        simulated=simulated,
        wall_ms=wall_ms,
        counters=collect_counters(),
        notes=list(notes),
    )


class RunLedger:
    """Append-only JSONL history of :class:`RunRecord` entries."""

    def __init__(self, root=None):
        self.root = pathlib.Path(root) if root else default_perf_dir()

    @property
    def path(self):
        return self.root / "history.jsonl"

    def append(self, record):
        """Append one record; returns the ledger path."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return self.path

    def records(self, name=None, limit=None):
        """Ledger entries in append order, optionally filtered by run
        name and truncated to the most recent *limit*.  Corrupt lines are
        skipped with a warning, never crashed on."""
        if not self.path.exists():
            return []
        found = []
        with open(self.path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = RunRecord.from_dict(json.loads(line))
                except (ValueError, TypeError) as exc:
                    log.warning(
                        "skipping corrupt ledger line %s:%d (%s)",
                        self.path, lineno, exc,
                    )
                    continue
                if name is None or record.name == name:
                    found.append(record)
        if limit is not None:
            found = found[-limit:]
        return found

    def latest(self, name=None):
        """The most recent record (for *name*), or ``None``."""
        records = self.records(name=name, limit=1)
        return records[-1] if records else None


def snapshot_path(name, directory="."):
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def write_snapshot(record, directory="."):
    """Emit the repo-root ``BENCH_<name>.json`` twin of a run record."""
    path = snapshot_path(record.name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_snapshot(path):
    """Read a ``BENCH_<name>.json`` snapshot back into a RunRecord."""
    with open(path, encoding="utf-8") as handle:
        return RunRecord.from_dict(json.load(handle))
