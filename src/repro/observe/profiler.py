"""EXPLAIN ANALYZE: run a plan with live observability and report per
operator what the simulated hardware actually did.

:func:`profile_plan` installs a fresh
:class:`~repro.observe.trace.Observation` (metrics registry + tracer whose
spans mirror the plan tree) on an engine, runs the plan under the cold/hot
protocol, and returns a :class:`QueryProfile`:

* per operator — actual rows, estimated rows and the ``misestimate_ratio``
  between them, simulated self/inclusive time split into CPU vs I/O and
  seek vs transfer, buffer page hits/misses, disk requests;
* per query — total :class:`~repro.engine.clock.QueryTiming`, charge
  attribution by category (``plan`` / ``execute`` / ``output`` /
  ``io.seek`` / ``io.transfer``), per-segment read stats, and the full
  metrics registry.

The accounting is exact: the sum over all spans (including the root
``query`` span, which absorbs planning, output and build work no operator
claims) of simulated self-time equals the query's total clock charge.
Instrumentation only ever *reads* the execution — results are identical
with profiling on or off.

JSON export follows the schema documented in ``docs/observability.md``;
:func:`validate_profile` checks a decoded document against it.
"""

import json
from dataclasses import dataclass, field

from repro.engine.clock import QueryTiming
from repro.errors import BenchmarkError
from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import (
    BYTES,
    IO,
    REQUESTS,
    SEEK,
    TRANSFER,
    Observation,
    Tracer,
    vector_dict,
)
from repro.plan.optimizer import annotate_cardinalities, engine_stats_provider
from repro.plan.render import (
    describe_node,
    describe_physical_node,
    render_physical_plan,
    render_plan,
)

PROFILE_SCHEMA_VERSION = 1

_TIME_FIELDS = (
    "cpu_seconds", "io_seconds", "seek_seconds", "transfer_seconds",
    "wall_seconds",
)


def _fmt_seconds(seconds):
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.3f}ms"


def _fmt_bytes(nbytes):
    nbytes = int(nbytes)
    if nbytes >= 1024 * 1024:
        return f"{nbytes / (1024 * 1024):.1f}MB"
    if nbytes >= 1024:
        return f"{nbytes / 1024:.1f}KB"
    return f"{nbytes}B"


@dataclass
class QueryProfile:
    """The outcome of one profiled run."""

    query: str
    engine_kind: str
    mode: str
    plan: object
    tracer: Tracer
    timing: QueryTiming
    registry: MetricsRegistry
    categories: dict
    segments: dict
    relation: object = None
    notes: list = field(default_factory=list)
    #: Engine-lowered physical tree (None for engines outside the unified
    #: execution layer, e.g. the C-Store replica).
    physical: object = None
    #: Compression report + per-run compressed-scan counters (None when the
    #: engine stores columns raw).
    compression: object = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def root(self):
        return self.tracer.root

    @property
    def n_rows(self):
        return self.relation.n_rows if self.relation is not None else None

    def span_for(self, node):
        return self.tracer.span_for(node)

    def operator_spans(self):
        """Every span except the root, in plan order."""
        return [s for s in self.root.walk() if s is not self.root]

    def total_span_seconds(self):
        """Sum of simulated self-time over the whole span tree; equals
        ``timing.real_seconds`` by construction."""
        return sum(s.self_seconds() for s in self.root.walk())

    def unattributed_seconds(self):
        """Root self-time: parse/plan/output/build work owned by no
        operator."""
        return self.root.self_seconds()

    # ------------------------------------------------------------------
    # text rendering
    # ------------------------------------------------------------------

    def render(self, max_union_branches=4, with_metrics=False):
        t = self.timing
        lines = [
            f"EXPLAIN ANALYZE {self.query or '<plan>'} "
            f"({self.engine_kind}, {self.mode})",
            f"rows: {self.n_rows}; "
            f"real {t.real_seconds:.6f}s = user {t.user_seconds:.6f}s "
            f"+ io {t.real_seconds - t.user_seconds:.6f}s "
            f"(seek {t.seek_seconds:.6f}s + transfer {t.transfer_seconds:.6f}s); "
            f"{t.bytes_read} bytes in {t.io_requests} requests",
        ]
        if self.categories:
            parts = ", ".join(
                f"{name} {_fmt_seconds(seconds)}"
                for name, seconds in sorted(self.categories.items())
            )
            lines.append(f"by category: {parts}")
        lines.append(
            "unattributed (parse/plan/output/build): "
            f"{_fmt_seconds(self.unattributed_seconds())}"
        )
        if self.compression:
            c = self.compression
            lines.append(
                f"compression: mode {c['mode']}, "
                f"ratio {c['compression_ratio']:.1f}x, "
                f"bytes_scanned {_fmt_bytes(c['bytes_scanned'])} "
                f"(logical {_fmt_bytes(c['logical_bytes_scanned'])}), "
                f"runs_skipped {c['runs_skipped']}"
            )
        lines.append("")
        lines.append(
            render_plan(
                self.plan,
                max_union_branches=max_union_branches,
                annotate=self._annotate,
            )
        )
        if self.physical is not None:
            lines.append("")
            lines.append("physical plan:")
            lines.append(
                render_physical_plan(
                    self.physical,
                    max_union_branches=max_union_branches,
                    annotate=self._annotate_physical,
                )
            )
        if with_metrics:
            text = self.registry.render_text()
            if text:
                lines.append("")
                lines.append(text)
        return "\n".join(lines)

    def _annotate(self, node):
        span = self.tracer.span_for(node)
        if span is None:
            return ""
        parts = []
        if span.calls == 0 and span.rows is None:
            parts.append("fused into parent")
        if span.rows is not None:
            parts.append(f"rows={span.rows}")
        if span.estimated_rows is not None:
            parts.append(f"est={span.estimated_rows:.0f}")
            ratio = span.misestimate_ratio()
            if ratio is not None:
                parts.append(f"x{ratio:.1f}")
        if span.calls:
            sim = span.self_sim
            parts.append(f"self={_fmt_seconds(span.self_seconds())}")
            if sim[IO]:
                parts.append(
                    f"io={_fmt_bytes(sim[BYTES])}/{int(sim[REQUESTS])}req"
                    f" (seek {_fmt_seconds(sim[SEEK])}"
                    f" + xfer {_fmt_seconds(sim[TRANSFER])})"
                )
            hits = span.counts.get("page_hits", 0)
            misses = span.counts.get("page_misses", 0)
            if hits or misses:
                ratio = hits / (hits + misses)
                parts.append(f"pages={hits}h/{misses}m ({ratio:.0%} hit)")
        if not parts:
            return ""
        return "  · " + " · ".join(parts)

    def _annotate_physical(self, pnode):
        span = self.tracer.span_for(pnode.logical)
        if span is None:
            return ""
        parts = []
        if span.rows is not None:
            parts.append(f"rows={span.rows}")
        if span.estimated_rows is not None:
            parts.append(f"est={span.estimated_rows:.0f}")
            ratio = span.misestimate_ratio()
            if ratio is not None:
                parts.append(f"x{ratio:.1f}")
        if not parts:
            return ""
        return "  · " + " · ".join(parts)

    # ------------------------------------------------------------------
    # JSON export
    # ------------------------------------------------------------------

    def to_dict(self):
        t = self.timing
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "query": self.query,
            "engine": self.engine_kind,
            "mode": self.mode,
            "totals": {
                "n_rows": self.n_rows,
                "real_seconds": t.real_seconds,
                "user_seconds": t.user_seconds,
                "io_seconds": t.real_seconds - t.user_seconds,
                "seek_seconds": t.seek_seconds,
                "transfer_seconds": t.transfer_seconds,
                "bytes_read": t.bytes_read,
                "io_requests": t.io_requests,
            },
            "categories": dict(self.categories),
            "unattributed_seconds": self.unattributed_seconds(),
            "plan": self._span_dict(self.root),
            "physical": (
                self._physical_dict(self.physical)
                if self.physical is not None else None
            ),
            "segments": {
                name: stats.to_dict()
                for name, stats in sorted(self.segments.items())
            },
            "metrics": self.registry.to_dict(),
            "compression": (
                dict(self.compression)
                if self.compression is not None else None
            ),
            "notes": list(self.notes),
        }

    def _span_dict(self, span):
        return {
            "operator": span.name,
            "describe": span.detail,
            "calls": span.calls,
            "actual_rows": span.rows,
            "estimated_rows": span.estimated_rows,
            "misestimate_ratio": span.misestimate_ratio(),
            "self": vector_dict(span.self_sim, span.wall_self),
            "inclusive": vector_dict(span.inclusive(), span.wall_inclusive()),
            "counts": dict(span.counts),
            "children": [self._span_dict(c) for c in span.children],
        }

    def _physical_dict(self, pnode):
        span = self.tracer.span_for(pnode.logical)
        return {
            "operator": pnode.name,
            "engine": pnode.engine,
            "describe": describe_physical_node(pnode),
            "fused": len(pnode.fused),
            "actual_rows": span.rows if span is not None else None,
            "estimated_rows": (
                span.estimated_rows if span is not None else None
            ),
            "misestimate_ratio": (
                span.misestimate_ratio() if span is not None else None
            ),
            "children": [self._physical_dict(c) for c in pnode.children],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def to_chrome_trace(self):
        """The profile as a Chrome trace-event document (Perfetto-ready);
        see :func:`repro.observe.export.profile_to_chrome`."""
        from repro.observe.export import profile_to_chrome

        return profile_to_chrome(self)


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------

def profile_plan(engine, plan, mode="cold", query=""):
    """Run *plan* on *engine* under EXPLAIN ANALYZE; returns a
    :class:`QueryProfile`.

    *mode* follows the benchmark protocol: ``"cold"`` clears the buffer
    pool first; ``"hot"`` performs one unobserved warm-up run.
    ``"current"`` does neither — the query runs against the buffer pool
    exactly as it stands, which is how the session API profiles queries
    inside a live server whose pool is shared across sessions.
    """
    if mode not in ("cold", "hot", "current"):
        raise BenchmarkError(f"unknown mode {mode!r}")

    estimates = annotate_cardinalities(plan, engine_stats_provider(engine))
    # The lowered tree the unified layer will actually run (engines outside
    # the layer, e.g. the C-Store replica, have no lowering).
    physical = engine.lower(plan) if hasattr(engine, "lower") else None

    registry = MetricsRegistry()
    tracer = Tracer(clock=engine.clock)
    tracer.register_plan(plan, describe=describe_node)
    # Seed the spans with the optimizer's estimates so the profile can
    # report estimated-vs-actual per node.
    for node in tracer._keepalive:
        span = tracer.span_for(node)
        if span is not None and id(node) in estimates:
            span.estimated_rows = estimates[id(node)]

    if mode == "cold":
        engine.make_cold()
    elif mode == "hot":
        engine.run(plan)  # warm the buffer pool, unobserved

    engine.disk.reset_read_stats()
    observation = Observation(metrics=registry, tracer=tracer)
    engine.install_observation(observation)
    try:
        engine.clock.reset()
        with tracer.run():
            relation, timing = engine.run(plan)
    finally:
        engine.install_observation(None)

    tracer.root.rows = relation.n_rows
    compression = None
    report_fn = getattr(engine, "compression_report", None)
    if report_fn is not None:
        report = report_fn()
        if report is not None:
            compression = dict(report)
            for counter, key in (
                ("compress.bytes_scanned", "bytes_scanned"),
                ("compress.logical_bytes_scanned", "logical_bytes_scanned"),
                ("compress.runs_skipped", "runs_skipped"),
            ):
                compression[key] = _counter_total(registry, counter)
    return QueryProfile(
        query=query,
        engine_kind=getattr(engine, "kind", type(engine).__name__),
        mode=mode,
        plan=plan,
        tracer=tracer,
        timing=timing,
        registry=registry,
        categories=engine.clock.category_seconds(),
        segments=engine.disk.read_stats(),
        relation=relation,
        physical=physical,
        compression=compression,
    )


def _counter_total(registry, name):
    """Sum one counter across all label sets (e.g. per-segment labels)."""
    total = 0
    for key, value in registry.to_dict()["counters"].items():
        if key == name or key.startswith(name + "{"):
            total += value
    return int(total)


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------

def validate_profile(document):
    """Check a decoded profile JSON document against the documented schema
    (docs/observability.md).  Raises ``ValueError`` on the first problem;
    returns the document when it validates."""
    _require(document, "profile", {
        "schema_version": int,
        "query": str,
        "engine": str,
        "mode": str,
        "totals": dict,
        "categories": dict,
        "unattributed_seconds": (int, float),
        "plan": dict,
        "segments": dict,
        "metrics": dict,
        "notes": list,
    })
    if document["schema_version"] != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"profile schema_version {document['schema_version']} != "
            f"{PROFILE_SCHEMA_VERSION}"
        )
    _require(document["totals"], "totals", {
        "real_seconds": (int, float),
        "user_seconds": (int, float),
        "io_seconds": (int, float),
        "seek_seconds": (int, float),
        "transfer_seconds": (int, float),
        "bytes_read": int,
        "io_requests": int,
    })
    for name, seconds in document["categories"].items():
        if not isinstance(seconds, (int, float)):
            raise ValueError(f"category {name!r} is not a number")
    _require(document["metrics"], "metrics", {
        "counters": dict, "gauges": dict, "histograms": dict,
    })
    _validate_span(document["plan"], path="plan")
    if document.get("physical") is not None:
        _validate_physical(document["physical"], path="physical")
    return document


def _validate_span(node, path):
    _require(node, path, {
        "operator": str,
        "calls": int,
        "self": dict,
        "inclusive": dict,
        "counts": dict,
        "children": list,
    })
    for section in ("self", "inclusive"):
        vector = node[section]
        for fld in _TIME_FIELDS:
            if not isinstance(vector.get(fld), (int, float)):
                raise ValueError(f"{path}.{section}.{fld} is not a number")
        for fld in ("bytes_read", "io_requests"):
            if not isinstance(vector.get(fld), int):
                raise ValueError(f"{path}.{section}.{fld} is not an int")
    ratio = node.get("misestimate_ratio")
    if ratio is not None and (
        not isinstance(ratio, (int, float)) or ratio < 1.0
    ):
        raise ValueError(f"{path}.misestimate_ratio must be >= 1 or null")
    for i, child in enumerate(node["children"]):
        _validate_span(child, f"{path}.children[{i}]")


def _validate_physical(node, path):
    _require(node, path, {
        "operator": str,
        "engine": str,
        "describe": str,
        "fused": int,
        "children": list,
    })
    ratio = node.get("misestimate_ratio")
    if ratio is not None and (
        not isinstance(ratio, (int, float)) or ratio < 1.0
    ):
        raise ValueError(f"{path}.misestimate_ratio must be >= 1 or null")
    for i, child in enumerate(node["children"]):
        _validate_physical(child, f"{path}.children[{i}]")


def _require(mapping, path, fields):
    if not isinstance(mapping, dict):
        raise ValueError(f"{path} is not an object")
    for name, types in fields.items():
        if name not in mapping:
            raise ValueError(f"{path} is missing {name!r}")
        value = mapping[name]
        if value is None and name in (
            "actual_rows", "estimated_rows", "misestimate_ratio",
        ):
            continue
        if not isinstance(value, types):
            raise ValueError(f"{path}.{name} has wrong type")
