"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

The tracer's span tree and the metrics registry are this reproduction's
native observability formats; this module translates them into the two
interchange formats every tooling ecosystem already reads:

* :func:`profile_to_chrome` / :func:`chrome_trace_events` emit the
  `Chrome trace-event format`_ — open the file in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and the query's
  operator tree renders as a flame chart over the **simulated** clock
  (timestamps are simulated microseconds, not wall time; that is the
  point — the chart is deterministic and byte-identical across machines).
* :func:`metrics_to_prometheus` renders a
  :class:`~repro.observe.metrics.MetricsRegistry` in the Prometheus text
  exposition format, one line per labeled series.

.. _Chrome trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from repro.observe.metrics import parse_key
from repro.observe.trace import CPU, IO

#: Synthetic pid/tid for the single simulated "process".
TRACE_PID = 1
TRACE_TID = 1


def _micros(seconds):
    return seconds * 1e6


def _span_event(span, start_us, pid, tid):
    self_sim = span.self_sim
    inclusive = span.inclusive()
    event = {
        "name": span.name,
        "cat": "operator",
        "ph": "X",
        "ts": start_us,
        "dur": _micros(inclusive[CPU] + inclusive[IO]),
        "pid": pid,
        "tid": tid,
        "args": {
            "sid": span.sid,
            "calls": span.calls,
            "self_us": _micros(self_sim[CPU] + self_sim[IO]),
            "self_cpu_us": _micros(self_sim[CPU]),
            "self_io_us": _micros(self_sim[IO]),
        },
    }
    if span.detail:
        event["args"]["describe"] = span.detail
    if span.rows is not None:
        event["args"]["rows"] = span.rows
    if span.counts:
        event["args"]["counts"] = dict(span.counts)
    return event


def chrome_trace_events(root, pid=TRACE_PID, tid=TRACE_TID):
    """Complete ("X") trace events for a span tree, depth first.

    Layout: a span's event covers its **inclusive** simulated time;
    children are packed back to back from the parent's start, so the
    parent's self time shows up as the uncovered tail of its bar —
    exactly how Perfetto renders self time in a flame chart.  The sum of
    ``args.self_us`` over all events therefore equals the root's
    inclusive time: the tracer's exact-attribution invariant, visible in
    the export.
    """
    events = []

    def emit(span, start_us):
        events.append(_span_event(span, start_us, pid, tid))
        cursor = start_us
        for child in span.children:
            emit(child, cursor)
            child_inclusive = child.inclusive()
            cursor += _micros(child_inclusive[CPU] + child_inclusive[IO])

    emit(root, 0.0)
    return events


def profile_to_chrome(profile, pid=TRACE_PID, tid=TRACE_TID):
    """A full Chrome trace document for a
    :class:`~repro.observe.profiler.QueryProfile`."""
    label = profile.query or "query"
    metadata = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"repro simulated clock ({profile.engine_kind})"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"{label} [{profile.mode}]"},
        },
    ]
    return {
        "traceEvents": metadata + chrome_trace_events(profile.root, pid, tid),
        "displayTimeUnit": "ms",
        "otherData": {
            "query": profile.query,
            "engine": profile.engine_kind,
            "mode": profile.mode,
            "simulated": True,
            "real_seconds": profile.timing.real_seconds,
        },
    }


def validate_trace(document):
    """Check a decoded Chrome trace document: every complete event carries
    numeric ``ts``/``dur`` and integer ``pid``/``tid``, and events nest —
    each child bar lies within its parent's.  Raises ``ValueError`` on the
    first problem; returns the document when it validates."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace document has no traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    complete = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for fld in ("name", "ph", "pid", "tid"):
            if fld not in event:
                raise ValueError(f"traceEvents[{i}] is missing {fld!r}")
        if not isinstance(event["pid"], int) or not isinstance(
            event["tid"], int
        ):
            raise ValueError(f"traceEvents[{i}] pid/tid must be integers")
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            raise ValueError(
                f"traceEvents[{i}] has unsupported phase {event['ph']!r}"
            )
        for fld in ("ts", "dur"):
            value = event.get(fld)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"traceEvents[{i}].{fld} must be a non-negative number"
                )
        complete.append(event)
    # Nesting: sorted by start, any event beginning inside an open one
    # must also end inside it (within float tolerance).
    open_stack = []
    for event in sorted(complete, key=lambda e: (e["ts"], -e["dur"])):
        start, end = event["ts"], event["ts"] + event["dur"]
        while open_stack and start >= open_stack[-1] - 1e-6:
            open_stack.pop()
        if open_stack and end > open_stack[-1] + 1e-6:
            raise ValueError(
                f"event {event['name']!r} overlaps its parent "
                f"(ends {end} after {open_stack[-1]})"
            )
        open_stack.append(end)
    return document


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _metric_name(prefix, name, suffix=""):
    """Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = []
    for ch in name:
        if ch.isalnum() or ch in ("_", ":"):
            cleaned.append(ch)
        else:
            cleaned.append("_")
    flat = "".join(cleaned)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{prefix}_{flat}{suffix}" if prefix else f"{flat}{suffix}"


def _label_text(labels, extra=None):
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = str(merged[key])
        value = value.replace("\\", "\\\\").replace('"', '\\"')
        value = value.replace("\n", "\\n")
        parts.append(f'{_metric_name("", key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def metrics_to_prometheus(registry, prefix="repro"):
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters and gauges become one sample per labeled series; histograms
    become summaries (``quantile`` series plus ``_sum``/``_count``).
    Instrument names are sanitized (dots to underscores); label values are
    quoted and escaped per the format.
    """
    exported = registry.to_dict()
    lines = []
    types = (
        ("counters", "counter", ""),
        ("gauges", "gauge", ""),
    )
    for section, prom_type, suffix in types:
        seen_names = []
        for key in sorted(exported[section]):
            name, labels = parse_key(key)
            metric = _metric_name(prefix, name, suffix)
            if metric not in seen_names:
                lines.append(f"# TYPE {metric} {prom_type}")
                seen_names.append(metric)
            lines.append(
                f"{metric}{_label_text(labels)} {exported[section][key]}"
            )
    for key in sorted(exported["histograms"]):
        name, labels = parse_key(key)
        metric = _metric_name(prefix, name)
        summary = exported["histograms"][key]
        lines.append(f"# TYPE {metric} summary")
        for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
            value = summary.get(q_key)
            if value is None:
                continue
            lines.append(
                f"{metric}{_label_text(labels, {'quantile': q_label})} "
                f"{value}"
            )
        lines.append(f"{metric}_sum{_label_text(labels)} {summary['sum']}")
        lines.append(f"{metric}_count{_label_text(labels)} {summary['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
