"""Module-level logging for the repro package.

Every module gets its logger via :func:`get_logger` (children of the
``repro`` root logger).  The CLI calls :func:`configure_logging` once,
mapping ``-v`` to DEBUG; library users can call it too or configure the
``repro`` logger with standard :mod:`logging` machinery instead.

Two output formats:

* the default human-readable ``LEVEL logger: message`` lines,
* structured JSON lines (``configure_logging(json_lines=True)`` or
  ``REPRO_LOG_JSON=1``): one JSON object per line carrying ``ts``,
  ``level``, ``logger``, ``message`` and — when a
  :class:`~repro.observe.trace.Tracer` is active — the ``span_id`` of the
  innermost open span, so log lines correlate with exported traces.

The handler resolves ``sys.stderr`` at emit time rather than capturing it
at configure time, so output follows stream redirection (including pytest's
``capsys``).
"""

import json
import logging
import os
import sys

_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: Environment knob selecting the structured JSON-lines format.
JSON_ENV = "REPRO_LOG_JSON"


class _StderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is at emit time."""

    def emit(self, record):
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - defensive, as stdlib does
            self.handleError(record)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log record, correlated with the active span.

    Fields: ``ts`` (unix seconds), ``level``, ``logger``, ``message``,
    plus ``span_id`` when emitted inside a traced region — the same id the
    Chrome trace export writes into each event's args, so a Perfetto span
    and the log lines produced under it can be joined.
    """

    def format(self, record):
        from repro.observe.trace import active_span_id

        document = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        span_id = active_span_id()
        if span_id is not None:
            document["span_id"] = span_id
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


def get_logger(name=None):
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger("repro")
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def json_lines_default():
    """Whether ``REPRO_LOG_JSON`` selects the structured format."""
    return os.environ.get(JSON_ENV, "") not in ("", "0")


def configure_logging(verbosity=0, json_lines=None):
    """Install the stderr handler on the ``repro`` root logger.

    *verbosity* 0 shows INFO and above; 1+ shows DEBUG.  *json_lines*
    selects the structured JSON-lines format (``None`` defers to the
    ``REPRO_LOG_JSON`` environment variable).  Idempotent: calling again
    only adjusts the level and format.
    """
    if json_lines is None:
        json_lines = json_lines_default()
    logger = logging.getLogger("repro")
    logger.setLevel(logging.DEBUG if verbosity else logging.INFO)
    handler = next(
        (h for h in logger.handlers if isinstance(h, _StderrHandler)), None
    )
    if handler is None:
        handler = _StderrHandler()
        logger.addHandler(handler)
    handler.setFormatter(
        JsonLinesFormatter() if json_lines
        else logging.Formatter(_FORMAT)
    )
    logger.propagate = False
    return logger
