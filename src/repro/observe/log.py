"""Module-level logging for the repro package.

Every module gets its logger via :func:`get_logger` (children of the
``repro`` root logger).  The CLI calls :func:`configure_logging` once,
mapping ``-v`` to DEBUG; library users can call it too or configure the
``repro`` logger with standard :mod:`logging` machinery instead.

The handler resolves ``sys.stderr`` at emit time rather than capturing it
at configure time, so output follows stream redirection (including pytest's
``capsys``).
"""

import logging
import sys

_FORMAT = "%(levelname)s %(name)s: %(message)s"


class _StderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is at emit time."""

    def emit(self, record):
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - defensive, as stdlib does
            self.handleError(record)


def get_logger(name=None):
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger("repro")
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(verbosity=0):
    """Install the stderr handler on the ``repro`` root logger.

    *verbosity* 0 shows INFO and above; 1+ shows DEBUG.  Idempotent: calling
    again only adjusts the level.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(logging.DEBUG if verbosity else logging.INFO)
    if not any(isinstance(h, _StderrHandler) for h in logger.handlers):
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
    return logger
