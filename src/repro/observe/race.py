"""Runtime race detection for annotated shared state.

The static guarded-by checker (:mod:`repro.analysis.concurrency`) proves
every *lexical* mutation site of a shared structure sits inside a ``with``
block on its guard lock.  This module is the dynamic complement: shared
structures are registered through :func:`shared_state` and their guard
locks through :func:`guard_lock`, and when race checking is enabled
(``REPRO_RACE_CHECK=1`` or :func:`enable_race_check`) every mutation
records the accessor thread id and verifies the guard lock is actually
held by the mutating thread.  Unguarded mutations are collected into a
process-wide report (:func:`race_report`) that the query server exposes
on ``/v1/stats`` and ``repro analyze --concurrency`` fails on.

Disabled (the default), the wrappers cost one module-global read and a
branch per mutation; structures behave exactly like the plain ``dict`` /
``list`` they wrap, so production paths are unaffected.

The harness never *prevents* a race — it is a detector, not a fence.  It
is deliberately tolerant of its own concurrency: the recorder serializes
on a private leaf lock that nothing else is acquired under.
"""

import os
import threading

#: Environment switch: any value other than empty/0/false/off/no enables
#: the write barrier at import time.
RACE_ENV = "REPRO_RACE_CHECK"

#: Cap on retained per-event violation records (counters keep counting).
MAX_VIOLATION_EVENTS = 200


def _env_enabled():
    raw = os.environ.get(RACE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


#: Leaf lock serializing the recorder's own bookkeeping below.  Nothing
#: acquires any other lock while holding it.
_STATE_LOCK = threading.Lock()

#: Write-barrier switch; rebound only under the recorder lock.
_enabled = _env_enabled()

#: structure name -> {"threads": set of ids, "mutations": n, "unguarded": n}
_structures = {}  # guarded-by: _STATE_LOCK

#: Retained unguarded-mutation events (first MAX_VIOLATION_EVENTS).
_violations = []  # guarded-by: _STATE_LOCK


def race_check_enabled():
    """True while the write barrier is recording."""
    return _enabled


def enable_race_check(on=True):
    """Flip the write barrier at runtime (tests, ``repro analyze``)."""
    global _enabled
    with _STATE_LOCK:
        _enabled = bool(on)


def reset_race_state():
    """Clear recorded accessors and violations (keeps the enabled flag)."""
    with _STATE_LOCK:
        _structures.clear()
        del _violations[:]


def _record(name, lock, op):
    """Note one mutation of structure *name* under (or not under) *lock*."""
    guarded = lock is not None and lock.held_by_current_thread()
    tid = threading.get_ident()
    with _STATE_LOCK:
        if not _enabled:
            return
        entry = _structures.get(name)
        if entry is None:
            entry = {"threads": set(), "mutations": 0, "unguarded": 0}
            _structures[name] = entry
        entry["threads"].add(tid)
        entry["mutations"] += 1
        if not guarded:
            entry["unguarded"] += 1
            if len(_violations) < MAX_VIOLATION_EVENTS:
                _violations.append({
                    "structure": name,
                    "op": op,
                    "thread": tid,
                    "lock": None if lock is None else lock.name,
                })


def race_report():
    """The process-wide race-check report as a JSON-safe dict."""
    with _STATE_LOCK:
        structures = {
            name: {
                "threads": len(entry["threads"]),
                "mutations": entry["mutations"],
                "unguarded": entry["unguarded"],
            }
            for name, entry in sorted(_structures.items())
        }
        return {
            "enabled": _enabled,
            "structures": structures,
            "violation_count": sum(
                entry["unguarded"] for entry in _structures.values()
            ),
            "violations": [dict(event) for event in _violations],
        }


class InstrumentedLock:
    """A lock that knows who holds it.

    Wraps a :class:`threading.Lock` (or ``RLock`` with ``reentrant=True``)
    and records the owning thread id so the write barrier can ask
    :meth:`held_by_current_thread`.  The owner fields are only touched by
    the thread that holds the underlying lock, so they need no further
    synchronization.
    """

    __slots__ = ("name", "reentrant", "_lock", "_owner", "_depth")

    def __init__(self, name="lock", reentrant=False):
        self.name = name
        self.reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self._owner = None
        self._depth = 0

    def acquire(self, blocking=True, timeout=-1):
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._depth += 1
        return acquired

    def release(self):
        self._depth -= 1
        if self._depth <= 0:
            self._owner = None
            self._depth = 0
        self._lock.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def held_by_current_thread(self):
        return self._owner == threading.get_ident()

    def locked(self):
        return self._owner is not None

    def __repr__(self):
        return f"InstrumentedLock({self.name!r})"


def guard_lock(name, reentrant=False):
    """A guard lock for one shared structure (use as ``with lock:``)."""
    return InstrumentedLock(name, reentrant=reentrant)


class SharedStateDict(dict):
    """A dict whose mutators report to the race recorder when enabled."""

    __slots__ = ("_race_name", "_race_lock")

    def _note(self, op):
        if not _enabled:
            return
        _record(getattr(self, "_race_name", "?"),
                getattr(self, "_race_lock", None), op)

    def __setitem__(self, key, value):
        self._note("__setitem__")
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):
        self._note("__delitem__")
        dict.__delitem__(self, key)

    def pop(self, *args):
        self._note("pop")
        return dict.pop(self, *args)

    def popitem(self):
        self._note("popitem")
        return dict.popitem(self)

    def clear(self):
        self._note("clear")
        dict.clear(self)

    def update(self, *args, **kwargs):
        self._note("update")
        dict.update(self, *args, **kwargs)

    def setdefault(self, key, default=None):
        self._note("setdefault")
        return dict.setdefault(self, key, default)


class SharedStateList(list):
    """A list whose mutators report to the race recorder when enabled."""

    __slots__ = ("_race_name", "_race_lock")

    def _note(self, op):
        if not _enabled:
            return
        _record(getattr(self, "_race_name", "?"),
                getattr(self, "_race_lock", None), op)

    def append(self, value):
        self._note("append")
        list.append(self, value)

    def extend(self, values):
        self._note("extend")
        list.extend(self, values)

    def insert(self, index, value):
        self._note("insert")
        list.insert(self, index, value)

    def remove(self, value):
        self._note("remove")
        list.remove(self, value)

    def pop(self, *args):
        self._note("pop")
        return list.pop(self, *args)

    def clear(self):
        self._note("clear")
        list.clear(self)

    def sort(self, **kwargs):
        self._note("sort")
        list.sort(self, **kwargs)

    def reverse(self):
        self._note("reverse")
        list.reverse(self)

    def __setitem__(self, index, value):
        self._note("__setitem__")
        list.__setitem__(self, index, value)

    def __delitem__(self, index):
        self._note("__delitem__")
        list.__delitem__(self, index)

    def __iadd__(self, values):
        self._note("__iadd__")
        list.extend(self, values)
        return self


def shared_state(name, initial, lock):
    """Register a shared mutable structure with the race recorder.

    Returns a monitored ``dict`` or ``list`` seeded from *initial* whose
    mutators verify *lock* (an :class:`InstrumentedLock`) is held whenever
    race checking is enabled.  The construction itself records nothing —
    init-time writes are allowed by convention.
    """
    if isinstance(initial, dict):
        wrapped = SharedStateDict(initial)
    elif isinstance(initial, (list, tuple)):
        wrapped = SharedStateList(initial)
    else:
        raise TypeError(
            f"shared_state only wraps dicts and lists, not "
            f"{type(initial).__name__}"
        )
    wrapped._race_name = name
    wrapped._race_lock = lock
    return wrapped
