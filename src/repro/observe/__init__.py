"""repro.observe — execution tracing, metrics, logging, and the
EXPLAIN ANALYZE profiler.

Three layers, all zero-dependency and inert by default:

* :mod:`repro.observe.metrics` — a labeled counter/gauge/histogram
  registry with dict/JSON/text export,
* :mod:`repro.observe.trace` — a span tracer with exact simulated-clock
  attribution plus wall-clock durations, bundled with the registry into an
  :class:`~repro.observe.trace.Observation` that engines carry,
* :mod:`repro.observe.profiler` — EXPLAIN ANALYZE: run a plan with a live
  Observation installed and render per-operator actual rows, estimated
  rows, I/O breakdown and buffer behaviour (``repro profile`` on the CLI).

:mod:`repro.observe.log` holds the package's logging setup.
"""

from repro.observe.log import configure_logging, get_logger
from repro.observe.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
    format_key,
)
from repro.observe.trace import (
    NULL_OBSERVATION,
    NULL_TRACER,
    NullTracer,
    Observation,
    Span,
    Tracer,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "format_key",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Observation",
    "NULL_OBSERVATION",
    # provided lazily from repro.observe.profiler:
    "QueryProfile",
    "profile_plan",
    "validate_profile",
    "PROFILE_SCHEMA_VERSION",
]

_PROFILER_NAMES = {
    "QueryProfile",
    "profile_plan",
    "validate_profile",
    "PROFILE_SCHEMA_VERSION",
}


def __getattr__(name):
    # The profiler pulls in the planner/optimizer stack; load it only when
    # asked so `import repro.engine` stays light.
    if name in _PROFILER_NAMES:
        from repro.observe import profiler

        return getattr(profiler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
