"""repro.observe — execution tracing, metrics, logging, and the
EXPLAIN ANALYZE profiler.

Three layers, all zero-dependency and inert by default:

* :mod:`repro.observe.metrics` — a labeled counter/gauge/histogram
  registry with dict/JSON/text export,
* :mod:`repro.observe.trace` — a span tracer with exact simulated-clock
  attribution plus wall-clock durations, bundled with the registry into an
  :class:`~repro.observe.trace.Observation` that engines carry,
* :mod:`repro.observe.profiler` — EXPLAIN ANALYZE: run a plan with a live
  Observation installed and render per-operator actual rows, estimated
  rows, I/O breakdown and buffer behaviour (``repro profile`` on the CLI).

The performance observatory builds on those layers:

* :mod:`repro.observe.history` — the run-history ledger: every benchmark
  or profile run recorded as a :class:`~repro.observe.history.RunRecord`
  (JSONL under ``.repro/perf/`` plus ``BENCH_<name>.json`` snapshots),
* :mod:`repro.observe.regression` — per-metric regression policies
  (simulated costs byte-identical, wall-clock tolerance-gated, counters
  informational) behind ``repro perf record / compare / report``,
* :mod:`repro.observe.export` — Chrome trace-event JSON for Perfetto and
  Prometheus text exposition of the metrics registry.

:mod:`repro.observe.log` holds the package's logging setup (plain text or
JSON lines carrying the active span id).
"""

from repro.observe.log import configure_logging, get_logger
from repro.observe.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
    format_key,
    parse_key,
)
from repro.observe.trace import (
    NULL_OBSERVATION,
    NULL_TRACER,
    NullTracer,
    Observation,
    Span,
    Tracer,
    active_span_id,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "format_key",
    "parse_key",
    "active_span_id",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Observation",
    "NULL_OBSERVATION",
    # provided lazily from repro.observe.profiler:
    "QueryProfile",
    "profile_plan",
    "validate_profile",
    "PROFILE_SCHEMA_VERSION",
    # provided lazily from the observatory modules:
    "RunRecord",
    "RunLedger",
    "record_from_results",
    "record_from_profile",
    "write_snapshot",
    "load_snapshot",
    "compare_records",
    "compare_bench_documents",
    "PerfComparison",
    "profile_to_chrome",
    "chrome_trace_events",
    "validate_trace",
    "metrics_to_prometheus",
]

_PROFILER_NAMES = {
    "QueryProfile",
    "profile_plan",
    "validate_profile",
    "PROFILE_SCHEMA_VERSION",
}

_LAZY_MODULES = {
    "RunRecord": "history",
    "RunLedger": "history",
    "record_from_results": "history",
    "record_from_profile": "history",
    "write_snapshot": "history",
    "load_snapshot": "history",
    "compare_records": "regression",
    "compare_bench_documents": "regression",
    "PerfComparison": "regression",
    "profile_to_chrome": "export",
    "chrome_trace_events": "export",
    "validate_trace": "export",
    "metrics_to_prometheus": "export",
}


def __getattr__(name):
    # The profiler pulls in the planner/optimizer stack; load it only when
    # asked so `import repro.engine` stays light.  Same treatment for the
    # observatory modules, which reach into bench/exec for counters.
    if name in _PROFILER_NAMES:
        from repro.observe import profiler

        return getattr(profiler, name)
    if name in _LAZY_MODULES:
        import importlib

        module = importlib.import_module(
            f"repro.observe.{_LAZY_MODULES[name]}"
        )
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
