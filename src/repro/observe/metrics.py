"""Zero-dependency in-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` hands out named instruments, optionally labeled
(``registry.counter("disk.requests", segment="triples.prop")``).  Each
``(name, labels)`` pair maps to exactly one instrument, so incrementing the
same labeled counter from two call sites accumulates into one time series.

The registry is intentionally tiny — no background threads, no export
protocol — because the simulated engines are single-threaded and
deterministic.  Export is a plain dict (:meth:`MetricsRegistry.to_dict`),
JSON (:meth:`MetricsRegistry.to_json`) or aligned text
(:meth:`MetricsRegistry.render_text`).

When observability is off the engines hold a :class:`NullMetricsRegistry`
whose instruments are shared no-op singletons, so the disabled path costs
one attribute lookup and one no-op call.
"""

import json

#: Characters that would make a ``name{k=v,...}`` key ambiguous if they
#: appeared raw inside a label value; escaped with a backslash so two
#: distinct label dicts can never collide on one key.
_ESCAPED = ("\\", ",", "=", "{", "}")


def _escape(text):
    for ch in _ESCAPED:
        text = text.replace(ch, "\\" + ch)
    return text


def format_key(name, labels):
    """Canonical ``name{k=v,...}`` key for a labeled instrument.

    Label keys and values containing separator characters (``,``, ``=``,
    braces, backslash) are backslash-escaped, so the mapping from
    ``(name, labels)`` to key is injective — ``{"a": "1,b=2"}`` and
    ``{"a": "1", "b": "2"}`` produce different keys.
    """
    if not labels:
        return name
    inner = ",".join(
        f"{_escape(str(k))}={_escape(str(labels[k]))}" for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_key(key):
    """Invert :func:`format_key`: ``(name, labels)`` from a canonical key."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels = {}
    part, field = [], []
    target = part
    escaped = False
    for ch in inner:
        if escaped:
            target.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "=" and target is part:
            field = []
            target = field
        elif ch == ",":
            labels["".join(part)] = "".join(field)
            part, field = [], []
            target = part
        else:
            target.append(ch)
    if part or field:
        labels["".join(part)] = "".join(field)
    return name, labels


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Gauge:
    """A value that can go up and down (e.g. resident pages)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n


class Histogram:
    """Summary statistics plus power-of-4 bucket counts.

    Buckets are cumulative-free: ``buckets[i]`` counts observations with
    ``4**i <= value < 4**(i+1)`` (index 0 also catches values below 1).
    Good enough to see the shape of request sizes without configuration.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    N_BUCKETS = 16

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        bound = 4
        while value >= bound and index < self.N_BUCKETS - 1:
            bound *= 4
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Estimated q-quantile (``0 <= q <= 1``) from the bucket counts.

        Linear interpolation inside the containing bucket, clamped to the
        observed ``[min, max]`` range so single-sample and narrow-range
        histograms report exact values.  ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= target:
                low = 0.0 if index == 0 else float(4 ** index)
                high = float(4 ** (index + 1))
                low = max(low, self.min)
                high = min(high, self.max)
                if high <= low:
                    value = low
                else:
                    fraction = max(0.0, target - cumulative) / n
                    value = low + (high - low) * fraction
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    def summary(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                f"<{4 ** (i + 1)}": n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


class MetricsRegistry:
    """Namespace of counters, gauges and histograms, labeled by string."""

    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------

    def counter(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self):
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self):
        lines = []
        for key, counter in sorted(self._counters.items()):
            lines.append(f"counter   {key} = {counter.value}")
        for key, gauge in sorted(self._gauges.items()):
            lines.append(f"gauge     {key} = {gauge.value}")
        for key, histogram in sorted(self._histograms.items()):
            lines.append(
                f"histogram {key} count={histogram.count} "
                f"mean={histogram.mean:.1f} min={histogram.min} "
                f"max={histogram.max}"
            )
        return "\n".join(lines)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, **labels):
        return _NULL_INSTRUMENT

    def to_dict(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self):
        return ""


NULL_REGISTRY = NullMetricsRegistry()
