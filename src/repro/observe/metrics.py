"""Zero-dependency in-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` hands out named instruments, optionally labeled
(``registry.counter("disk.requests", segment="triples.prop")``).  Each
``(name, labels)`` pair maps to exactly one instrument, so incrementing the
same labeled counter from two call sites accumulates into one time series.

The registry is intentionally tiny — no background threads, no export
protocol — because the simulated engines are single-threaded and
deterministic.  Export is a plain dict (:meth:`MetricsRegistry.to_dict`),
JSON (:meth:`MetricsRegistry.to_json`) or aligned text
(:meth:`MetricsRegistry.render_text`).

When observability is off the engines hold a :class:`NullMetricsRegistry`
whose instruments are shared no-op singletons, so the disabled path costs
one attribute lookup and one no-op call.
"""

import json


def format_key(name, labels):
    """Canonical ``name{k=v,...}`` key for a labeled instrument."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Gauge:
    """A value that can go up and down (e.g. resident pages)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n


class Histogram:
    """Summary statistics plus power-of-4 bucket counts.

    Buckets are cumulative-free: ``buckets[i]`` counts observations with
    ``4**i <= value < 4**(i+1)`` (index 0 also catches values below 1).
    Good enough to see the shape of request sizes without configuration.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    N_BUCKETS = 16

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        bound = 4
        while value >= bound and index < self.N_BUCKETS - 1:
            bound *= 4
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def summary(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"<{4 ** (i + 1)}": n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


class MetricsRegistry:
    """Namespace of counters, gauges and histograms, labeled by string."""

    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------

    def counter(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name, **labels):
        key = format_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self):
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self):
        lines = []
        for key, counter in sorted(self._counters.items()):
            lines.append(f"counter   {key} = {counter.value}")
        for key, gauge in sorted(self._gauges.items()):
            lines.append(f"gauge     {key} = {gauge.value}")
        for key, histogram in sorted(self._histograms.items()):
            lines.append(
                f"histogram {key} count={histogram.count} "
                f"mean={histogram.mean:.1f} min={histogram.min} "
                f"max={histogram.max}"
            )
        return "\n".join(lines)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, **labels):
        return _NULL_INSTRUMENT

    def to_dict(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self):
        return ""


NULL_REGISTRY = NullMetricsRegistry()
