"""Span-based execution tracing over the simulated query clock.

A :class:`Tracer` maintains a tree of :class:`Span` objects.  Spans can be
pre-registered to mirror a logical plan (:meth:`Tracer.register_plan`) so
that both executors — the recursive column-at-a-time one and the lazy
tuple-at-a-time one — attribute work to the *same* plan node, or opened
ad hoc with ``with tracer.span("load", table=...)``.

Attribution is exact for the simulated clock: entering a span snapshots the
clock's accumulators (CPU, I/O, bytes, requests, seek, transfer) plus the
wall clock; exiting charges the delta to the span's *self* time minus
whatever nested spans consumed in between.  Re-entry accumulates, which is
what makes per-tuple attribution in the row store's generator pipeline work:
every ``next()`` pull pushes the operator's span, and pulls from child
streams subtract themselves automatically.  The invariant the profiler
relies on is::

    sum over all spans of self(cpu + io) == total clock charge

as long as the whole measured region runs inside :meth:`Tracer.run`.

When tracing is off, engines hold the shared :data:`NULL_TRACER`, whose
methods are no-ops.
"""

import itertools
import time
from contextlib import contextmanager

from repro.observe.metrics import NULL_REGISTRY
from repro.observe.race import guard_lock, shared_state

#: Monotonic span-id source: every Span gets a process-unique integer id so
#: exported traces and structured log lines can correlate on it.
#: ``itertools.count`` advances atomically under the GIL.
_SPAN_IDS = itertools.count(1)

#: Stack of tracers currently inside :meth:`Tracer.run` (innermost last);
#: :func:`active_span_id` reads it so log lines can carry the span id.
#: Concurrent sessions each run their own tracer, so entry/exit mutations
#: from the server's worker threads must serialize.
_ACTIVE_TRACERS_LOCK = guard_lock("observe.trace._ACTIVE_TRACERS")
_ACTIVE_TRACERS = shared_state(  # guarded-by: _ACTIVE_TRACERS_LOCK
    "observe.trace._ACTIVE_TRACERS", [], _ACTIVE_TRACERS_LOCK,
)


def active_span_id():
    """Span id of the innermost active span, or ``None`` outside tracing."""
    if not _ACTIVE_TRACERS:
        return None
    span = _ACTIVE_TRACERS[-1].current_span()
    return span.sid if span is not None else None


def wall_now():
    """Monotonic wall timestamp for span attribution.

    Engine code may never let the wall clock near a simulated cost (the
    ``wall-clock-in-engine`` lint rule); the parallel operators measure
    the wall duration of a worker batch *for span attribution only*
    through this observe-side helper, keeping the wall clock confined to
    the observability layer.
    """
    return time.perf_counter()

#: Indices into a clock snapshot / span time vector.
CPU, IO, BYTES, REQUESTS, SEEK, TRANSFER = range(6)

_ZERO = (0.0, 0.0, 0, 0, 0.0, 0.0)

#: Field names for exporting a time vector.
VECTOR_FIELDS = (
    "cpu_seconds",
    "io_seconds",
    "bytes_read",
    "io_requests",
    "seek_seconds",
    "transfer_seconds",
)


def vector_dict(vector, wall_seconds):
    out = dict(zip(VECTOR_FIELDS, vector))
    out["bytes_read"] = int(out["bytes_read"])
    out["io_requests"] = int(out["io_requests"])
    out["wall_seconds"] = wall_seconds
    return out


class Span:
    """One node of the trace tree.

    ``self_sim`` is the 6-vector of simulated charges attributed to this
    span alone (children excluded); :meth:`inclusive` folds children back
    in.  ``rows`` is the actual output cardinality reported by the
    executor; ``estimated_rows`` is filled by the profiler from the
    optimizer's estimator.  ``counts`` holds additive event counters
    (buffer page hits/misses, ...) contributed via
    :meth:`Tracer.current_add`.
    """

    __slots__ = (
        "name", "detail", "attrs", "parent", "children", "calls", "rows",
        "estimated_rows", "self_sim", "wall_self", "counts", "sid",
    )

    def __init__(self, name, detail="", parent=None, attrs=None):
        self.sid = next(_SPAN_IDS)
        self.name = name
        self.detail = detail
        self.attrs = dict(attrs) if attrs else {}
        self.parent = parent
        self.children = []
        self.calls = 0
        self.rows = None
        self.estimated_rows = None
        self.self_sim = [0.0, 0.0, 0, 0, 0.0, 0.0]
        self.wall_self = 0.0
        self.counts = {}

    def child_named(self, name):
        for child in self.children:
            if child.name == name:
                return child
        return None

    def inclusive(self):
        """Self vector plus every descendant's, elementwise."""
        total = list(self.self_sim)
        for child in self.children:
            child_total = child.inclusive()
            for i in range(6):
                total[i] += child_total[i]
        return total

    def wall_inclusive(self):
        return self.wall_self + sum(c.wall_inclusive() for c in self.children)

    def self_seconds(self):
        """Simulated real seconds attributed to this span alone."""
        return self.self_sim[CPU] + self.self_sim[IO]

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def add_counts(self, counts):
        for key, value in counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    def misestimate_ratio(self):
        """How far off the optimizer was: ``max(est, act) / min(est, act)``,
        floored at one row so empty results stay finite.  ``None`` when no
        estimate was recorded."""
        if self.estimated_rows is None or self.rows is None:
            return None
        hi = max(self.estimated_rows, float(self.rows))
        lo = max(1.0, min(self.estimated_rows, float(self.rows)))
        return hi / lo

    def __repr__(self):
        return f"Span({self.name!r}, calls={self.calls}, rows={self.rows})"


class Tracer:
    """Collects a span tree; see the module docstring for attribution."""

    enabled = True

    def __init__(self, clock=None, root_name="query"):
        self.clock = clock
        self.root = Span(root_name)
        self._index = {}      # id(key object) -> Span
        self._keepalive = []  # keep keyed objects alive so ids stay unique
        self._stack = []      # frames: [span, snap, wall0, child_vec, child_wall]

    # ------------------------------------------------------------------
    # span registration / lookup
    # ------------------------------------------------------------------

    def register_plan(self, plan, describe=None):
        """Create one span per plan node, mirroring the plan tree."""

        def attach(node, parent):
            span = Span(
                type(node).__name__.lower(),
                describe(node) if describe else "",
                parent,
            )
            parent.children.append(span)
            self._index[id(node)] = span
            self._keepalive.append(node)
            for child in node.children():
                attach(child, span)

        attach(plan, self.root)

    def span_for(self, key):
        return self._index.get(id(key))

    # ------------------------------------------------------------------
    # push/pop attribution
    # ------------------------------------------------------------------

    def _snapshot(self):
        if self.clock is None:
            return _ZERO
        return self.clock.profile_snapshot()

    def enter(self, key):
        """Open an attribution frame for the span keyed by *key* (a plan
        node or any hashable-by-identity object).  Unknown keys get a fresh
        span under the currently active one."""
        span = self._index.get(id(key))
        if span is None:
            parent = self._stack[-1][0] if self._stack else self.root
            span = Span(str(key), "", parent)
            parent.children.append(span)
            self._index[id(key)] = span
            self._keepalive.append(key)
        self._push(span)

    def exit(self, key=None):
        self._pop()

    def _push(self, span):
        self._stack.append(
            [span, self._snapshot(), time.perf_counter(),
             [0.0, 0.0, 0, 0, 0.0, 0.0], 0.0]
        )

    def _pop(self):
        span, snap, wall0, child_vec, child_wall = self._stack.pop()
        now = self._snapshot()
        wall = time.perf_counter() - wall0
        span.calls += 1
        delta = [now[i] - snap[i] for i in range(6)]
        for i in range(6):
            span.self_sim[i] += delta[i] - child_vec[i]
        span.wall_self += wall - child_wall
        if self._stack:
            parent_frame = self._stack[-1]
            parent_child_vec = parent_frame[3]
            for i in range(6):
                parent_child_vec[i] += delta[i]
            parent_frame[4] += wall

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    @contextmanager
    def run(self):
        """Bracket the whole measured region; root self-time catches every
        charge not claimed by a nested span (planning, output, build).
        While active, the tracer is registered so :func:`active_span_id`
        (and through it the structured JSON logger) can name the span any
        log line was emitted under."""
        self._push(self.root)
        with _ACTIVE_TRACERS_LOCK:
            _ACTIVE_TRACERS.append(self)
        try:
            yield self.root
        finally:
            with _ACTIVE_TRACERS_LOCK:
                _ACTIVE_TRACERS.remove(self)
            self._pop()

    @contextmanager
    def span(self, name, **attrs):
        """Ad-hoc named span under the active one; repeats merge by name."""
        parent = self._stack[-1][0] if self._stack else self.root
        span = parent.child_named(name)
        if span is None:
            span = Span(name, "", parent, attrs)
            parent.children.append(span)
        elif attrs:
            span.attrs.update(attrs)
        self._push(span)
        try:
            yield span
        finally:
            self._pop()

    def set_rows(self, key, rows):
        span = self._index.get(id(key))
        if span is not None:
            span.rows = rows

    def current_add(self, **counts):
        """Add event counts to the currently active span."""
        if self._stack:
            self._stack[-1][0].add_counts(counts)

    def transfer_to_child(self, name, vector, wall_seconds=0.0):
        """Reattribute part of the active frame's pending charge to a
        child span named *name* (created under the active span on first
        use; repeats merge by name).

        The vector lands in the child's self time AND in the frame's
        child-subtraction vector, so the parent's self time shrinks by
        exactly the transferred amount — the tree-sum invariant
        (``sum of self == total clock charge``) is preserved
        structurally.  The morsel dispatcher uses this to split one
        coordinator-side cost replay across per-morsel child spans.
        """
        if not self._stack:
            return None
        frame = self._stack[-1]
        parent = frame[0]
        child = parent.child_named(name)
        if child is None:
            child = Span(name, "", parent)
            parent.children.append(child)
        child.calls += 1
        child_vec = frame[3]
        for i in range(6):
            child.self_sim[i] += vector[i]
            child_vec[i] += vector[i]
        child.wall_self += wall_seconds
        frame[4] += wall_seconds
        return child

    def current_span(self):
        return self._stack[-1][0] if self._stack else None


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every method is a no-op."""

    enabled = False
    root = None

    def register_plan(self, plan, describe=None):
        pass

    def span_for(self, key):
        return None

    def enter(self, key):
        pass

    def exit(self, key=None):
        pass

    def run(self):
        return _NULL_CONTEXT

    def span(self, name, **attrs):
        return _NULL_CONTEXT

    def set_rows(self, key, rows):
        pass

    def current_add(self, **counts):
        pass

    def transfer_to_child(self, name, vector, wall_seconds=0.0):
        return None

    def current_span(self):
        return None


NULL_TRACER = NullTracer()


class Observation:
    """The bundle engines carry: a metrics registry plus a tracer.

    The default, :data:`NULL_OBSERVATION`, is inert; engines check its
    ``enabled`` flag before doing any per-event bookkeeping, so the
    disabled path costs one attribute load per event site.
    """

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(self, metrics=None, tracer=None):
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enabled = metrics is not None or tracer is not None


NULL_OBSERVATION = Observation()
