"""Physical plan nodes.

A :class:`PhysicalPlan` node binds one *physical operator* — an entry of
the engine-keyed registry (:mod:`repro.exec.registry`) — to the logical
node (or fused node group) it implements.  Where logical nodes answer
"what relation is this?", physical nodes answer "which engine code runs,
and over which children?".

Physical trees are produced by :func:`repro.exec.registry.lower_plan` and
consumed by :class:`repro.exec.runtime.Runtime`.  They are deliberately
*thin*: no execution state lives here, so one physical tree can be run
many times (the benchmark's cold/hot protocol) and rendered/linted without
an engine at hand.  Unlike logical nodes they are not sealed — the
profiler annotates ``estimated_rows`` in place — but the bound logical
nodes stay immutable, so sharing them between the logical and physical
trees is sound.

Fusion convention: an operator that implements several logical nodes at
once (the engines fuse ``Select(Scan)`` into one access path) binds the
*top* node as :attr:`PhysicalPlan.logical` and records the absorbed ones
in :attr:`PhysicalPlan.fused`; the subtree below the fused group becomes
the node's children.
"""


class PhysicalPlan:
    """One physical operator bound to the logical subtree it implements."""

    __slots__ = (
        "op", "engine", "logical", "fused", "children", "details",
        "estimated_rows",
    )

    def __init__(self, op, engine, logical, children=(), fused=(),
                 details=None):
        self.op = op
        self.engine = engine
        self.logical = logical
        self.fused = tuple(fused)
        self.children = tuple(children)
        self.details = dict(details) if details else {}
        self.estimated_rows = None

    @property
    def name(self):
        """Physical operator name (e.g. ``scan+select``, ``adaptive-join``)."""
        return self.op.name

    def output_columns(self):
        """Physical output equals the bound logical node's output."""
        return self.logical.output_columns()

    def logical_nodes(self):
        """Every logical node this operator implements (top first)."""
        return (self.logical,) + self.fused

    def __repr__(self):
        return (
            f"PhysicalPlan({self.name!r}, engine={self.engine!r}, "
            f"logical={type(self.logical).__name__})"
        )


def walk_physical(plan):
    """Yield every physical node, pre-order."""
    yield plan
    for child in plan.children:
        yield from walk_physical(child)


def count_physical_operators(plan):
    """Number of physical operators in the tree (fused groups count once)."""
    return sum(1 for _ in walk_physical(plan))
