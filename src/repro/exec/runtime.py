"""The shared execution runtime: one driver for vector and pull engines.

:class:`Runtime` owns everything the two legacy executors duplicated
around their operator bodies:

* **Lowering + caching** — logical plans are lowered through the operator
  registry once and the physical tree is reused across runs (plans are
  sealed/immutable, so identity-keyed caching is sound; the benchmark's
  cold/hot protocol runs every plan at least twice).
* **Observability** — trace spans are entered/exited per physical
  operator, attributed to the operator's bound logical node so the
  EXPLAIN ANALYZE profiler sees one span tree regardless of engine.
  Vector operators are bracketed per call; pull operators are bracketed
  per tuple pull (the row store's work happens inside generators while a
  parent pulls).
* **Materialization** — the vector paradigm threads a needed-column set
  down and returns :class:`Intermediate` relations; the pull paradigm
  builds a :class:`Stream` tree and drains it into a
  :class:`~repro.relation.Relation`.

Operator functions receive the runtime as their first argument and call
:meth:`Runtime.run_child` / :meth:`Runtime.build_child` to evaluate their
physical children, which keeps recursion — and therefore tracing — in one
place.
"""

from collections import OrderedDict

from repro.errors import EngineError
from repro.exec.registry import engine_ops, lower_plan
from repro.observe.race import guard_lock, shared_state
from repro.plan import logical as L
from repro.relation import Relation

#: Lowered-plan cache capacity per runtime (plans are cached by identity;
#: the cache keeps plan objects alive so ids cannot be recycled).
LOWER_CACHE_SIZE = 64

#: Process-wide always-on lowering-cache accounting, aggregated over every
#: Runtime this process creates (the perf observatory records it per run).
#: Guarded by a lock: the query server drives runtimes from a thread pool,
#: and plain ``dict[k] += 1`` is a read-modify-write that loses updates
#: under interleaving.  One uncontended lock per lower() call — one per
#: plan execution — is noise next to the execution itself.
_LOWERING_STATS_LOCK = guard_lock("exec.runtime.LOWERING_STATS")
LOWERING_STATS = shared_state(  # guarded-by: _LOWERING_STATS_LOCK
    "exec.runtime.LOWERING_STATS",
    {"hits": 0, "misses": 0, "evictions": 0},
    _LOWERING_STATS_LOCK,
)


def global_lowering_cache_stats():
    """Snapshot of the process-wide lowering-cache counters.

    Named distinctly from :meth:`Runtime.lowering_cache_stats` (the
    per-runtime view) so ``from repro.exec.runtime import ...`` is never
    ambiguous about which scope it returns.
    """
    with _LOWERING_STATS_LOCK:
        return dict(LOWERING_STATS)


def reset_lowering_cache_stats():
    with _LOWERING_STATS_LOCK:
        for key in LOWERING_STATS:
            LOWERING_STATS[key] = 0


class Intermediate:
    """A vector-engine relation in flight plus the sort order it is known
    to satisfy (drives merge-join and binary-search decisions)."""

    __slots__ = ("relation", "sorted_by")

    def __init__(self, relation, sorted_by=()):
        self.relation = relation
        self.sorted_by = tuple(sorted_by)


class Stream:
    """A pull-engine stream of tuples plus its (qualified) column names."""

    __slots__ = ("columns", "_iterator")

    def __init__(self, columns, iterator):
        self.columns = list(columns)
        self._iterator = iterator

    def __iter__(self):
        return iter(self._iterator)

    def position(self, column):
        try:
            return self.columns.index(column)
        except ValueError:
            raise EngineError(
                f"stream has no column {column!r}; has {self.columns}"
            ) from None


class Runtime:
    """Drives physical plans for one engine instance."""

    #: Row-store join-method policy: "auto" (cost rule), "hash" (never
    #: probe an index), or "inl" (always probe when an index exists).  The
    #: non-auto settings exist for the join-strategy ablation bench.
    join_strategy = "auto"

    #: Cooperative cancellation: when a caller installs a
    #: :class:`~repro.exec.cancel.CancellationToken` here, the runtime
    #: polls it at every operator boundary (vector) / tuple pull (pull)
    #: and raises :class:`~repro.errors.QueryCancelled` once set.  The
    #: session layer serializes engine access, so one slot suffices.
    cancel_token = None

    #: Per-query degree-of-parallelism clamp.  The session layer installs
    #: the admitted dop here (under its execution lock) before running a
    #: plan; ``effective_dop`` can only lower the engine's configured
    #: parallelism, never raise it, so cached lowered plans stay valid.
    dop_override = None

    def __init__(self, engine):
        self.engine = engine
        self.costs = engine.costs
        self.clock = engine.clock
        self.pool = engine.pool
        self.ops = engine_ops(engine.kind)
        # id(plan) -> (plan, PhysicalPlan), most recently used last.
        self._lowered = OrderedDict()
        # Always-on per-runtime cache accounting (plain ints; mutated only
        # under the owning session/connection's execution lock).
        self.lower_hits = 0
        self.lower_misses = 0
        self.lower_evictions = 0

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------

    def lower(self, plan):
        """Physical tree for *plan* (cached by plan identity, LRU)."""
        cached = self._lowered.get(id(plan))
        if cached is not None:
            self._lowered.move_to_end(id(plan))
            self.lower_hits += 1
            with _LOWERING_STATS_LOCK:
                LOWERING_STATS["hits"] += 1
            return cached[1]
        self.lower_misses += 1
        physical = lower_plan(plan, self.engine.kind, instance=self.engine)
        evicted = 0
        if len(self._lowered) >= LOWER_CACHE_SIZE:
            self._lowered.popitem(last=False)
            evicted = 1
            self.lower_evictions += 1
        self._lowered[id(plan)] = (plan, physical)
        with _LOWERING_STATS_LOCK:
            LOWERING_STATS["misses"] += 1
            LOWERING_STATS["evictions"] += evicted
        return physical

    def lowering_cache_stats(self):
        """This runtime's lowering-cache counters (a fresh dict)."""
        return {
            "hits": self.lower_hits,
            "misses": self.lower_misses,
            "evictions": self.lower_evictions,
            "size": len(self._lowered),
        }

    def invalidate_lowered(self):
        """Drop every cached physical tree.  Engines call this when a
        configuration change (e.g. installing or removing parallelism)
        alters which guarded operators would bind at lowering time."""
        self._lowered.clear()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def execute(self, plan):
        """Run a logical plan end to end; returns a Relation."""
        physical = self.lower(plan)
        if self.ops.paradigm == "vector":
            result = self.run_child(
                physical, set(physical.logical.output_columns())
            )
            return result.relation
        stream = self.build_child(physical)
        out_names = physical.logical.output_columns()
        rows = list(stream)
        oid = set(out_names) - self._count_columns(physical.logical)
        return Relation.from_rows(out_names, rows, oid_columns=oid)

    @staticmethod
    def _count_columns(plan):
        """Names of aggregate-count columns anywhere in the plan (these
        hold plain integers, not dictionary oids)."""
        counts = set()
        for node in L.walk(plan):
            if isinstance(node, L.GroupBy):
                counts.add(node.count_column)
        return counts

    # ------------------------------------------------------------------
    # vector paradigm
    # ------------------------------------------------------------------

    def run_child(self, pnode, needed):
        """Evaluate a vector operator, attributing its work to a trace
        span when an Observation is installed (children subtract
        themselves)."""
        token = self.cancel_token
        if token is not None:
            token.raise_if_cancelled()
        observe = self.engine.observe
        if not observe.enabled:
            return pnode.op.fn(self, pnode, needed)
        tracer = observe.tracer
        tracer.enter(pnode.logical)
        try:
            result = pnode.op.fn(self, pnode, needed)
        finally:
            tracer.exit(pnode.logical)
        tracer.set_rows(pnode.logical, result.relation.n_rows)
        return result

    def traced_block(self, key, fn):
        """Run *fn* under a span keyed by logical node *key*, reporting the
        result's cardinality there.  Fused operators use this so absorbed
        nodes (a scan inside a fused scan+select) still get their own
        span, mirroring the legacy executors' attribution."""
        observe = self.engine.observe
        if not observe.enabled:
            return fn()
        tracer = observe.tracer
        tracer.enter(key)
        try:
            result = fn()
        finally:
            tracer.exit(key)
        tracer.set_rows(key, result.relation.n_rows)
        return result

    # ------------------------------------------------------------------
    # pull paradigm
    # ------------------------------------------------------------------

    def build_child(self, pnode):
        """Build a pull operator's stream; when an Observation is
        installed, wrap it so every tuple pull is attributed to the
        operator's span.

        Pull executors are lazy — an operator's work happens inside its
        generator while a parent pulls — so attribution brackets each
        ``next()`` call; pulls from child streams (themselves wrapped)
        subtract automatically.
        """
        token = self.cancel_token
        if token is not None:
            token.raise_if_cancelled()
        stream = pnode.op.fn(self, pnode)
        if token is not None:
            stream = Stream(
                stream.columns, self._cancellable_iter(stream, token)
            )
        observe = self.engine.observe
        if observe.enabled:
            return self._traced_stream(pnode.logical, stream, observe.tracer)
        return stream

    @staticmethod
    def _cancellable_iter(stream, token):
        for row in stream:
            token.raise_if_cancelled()
            yield row

    def _traced_stream(self, node, stream, tracer):
        def generate():
            iterator = iter(stream)
            span = None
            rows = 0
            while True:
                tracer.enter(node)
                try:
                    try:
                        row = next(iterator)
                    except StopIteration:
                        break
                finally:
                    tracer.exit(node)
                rows += 1
                if span is None:
                    span = tracer.span_for(node)
                if span is not None:
                    span.rows = rows
                yield row
            tracer.set_rows(node, rows)

        return Stream(stream.columns, generate())


def run_plan(engine, plan):
    """Run *plan* on *engine* through the unified layer with full engine
    bookkeeping (clock reset, plan overhead, output charges); returns
    ``(Relation, QueryTiming)``.  Engines cache a :class:`Runtime` as
    ``engine._executor``; ``engine.run`` drives it."""
    return engine.run(plan)


def execute_plan(engine, plan):
    """Like :func:`run_plan` but returns only the Relation — the front-end
    entry point (SQL, SPARQL, BGP solving, verification)."""
    relation, _ = engine.run(plan)
    return relation
