"""Cost formulas and conventions shared by every engine's operator set.

Before the unified layer, the column-store and row-store executors each
carried private copies of these: the sort cost formula, the per-row
grouping charge, the missing-value placeholder for aggregates over empty
inputs and for Extend constants absent from the dictionary, and the
sortedness bookkeeping after an all-ascending sort.  Divergent copies are
exactly how simulated engines drift apart, so they live here once and the
operator modules import them.
"""

import math

#: Placeholder for values that do not exist: a min/max over zero rows, or
#: an Extend constant absent from the dictionary (no real oid is negative,
#: so the placeholder can never collide with stored data).
MISSING_VALUE = -1

#: min/max realize lexicographic string aggregation thanks to the
#: order-preserving dictionary encoding (see GroupBy's docstring).
AGGREGATE_REDUCERS = ("min", "max")


def sort_cost(costs, n_rows):
    """CPU charge for sorting *n_rows*: ``sort_item * n * log2(n)``, with
    the log floored at one comparison so tiny inputs still pay."""
    return costs.sort_item * n_rows * max(1, math.log2(max(n_rows, 2)))


def group_unit_cost(costs, n_aggregates):
    """Per-row CPU charge of a GroupBy: one hash/probe step plus one
    accumulator update per aggregate."""
    return costs.group_tuple * (1 + n_aggregates)


def extend_fill_value(value):
    """The stored constant for an Extend node (missing -> placeholder)."""
    return MISSING_VALUE if value is None else value


def update_accumulator(func, current, value):
    """Tuple-at-a-time min/max accumulator step."""
    if func == "min":
        return value if value < current else current
    return value if value > current else current


def ascending_prefix(keys):
    """The sortedness a Sort guarantees afterwards: its full key list when
    every direction is ascending, nothing otherwise (descending runs are
    not representable in the sorted-prefix metadata)."""
    if all(direction == "asc" for _, direction in keys):
        return tuple(column for column, _ in keys)
    return ()
