"""Exec-parity harness: digest results and simulated costs per cell.

The unified execution layer (:mod:`repro.exec`) replaced two per-engine
``LogicalPlan`` interpreters.  Its contract is that the physical layer is
*invisible* to the benchmark: every engine x scheme cell must produce
byte-identical decoded results and bit-identical simulated timings to the
legacy executors.  This module packages that contract as a reusable sweep:

* :func:`parity_sweep` runs every benchmark query on every cell under the
  cold and hot protocols and returns a JSON-able document of result
  digests + exact timing fields;
* :func:`compare_parity` diffs two such documents field by field;
* ``scripts/capture_exec_goldens.py`` captures the document, and
  ``tests/test_exec_parity.py`` asserts the current tree still reproduces
  the goldens recorded from the pre-refactor executors.

Digests cover the *decoded* rows (sorted, so row order is out of scope —
SQL bags are unordered unless the plan sorts) while timings are compared
exactly: a single extra clock charge anywhere in an operator fails the
sweep.
"""

import hashlib

from repro.data import generate_barton
from repro.queries import ALL_QUERY_NAMES, build_query

PARITY_SCHEMA_VERSION = 1

#: Run protocols covered by the sweep.  ``cold`` clears the buffer pool
#: before the measured run; ``hot`` performs one unmeasured warm-up first,
#: which exercises the buffer-hit cost paths the cold run cannot.
PARITY_MODES = ("cold", "hot")


def parity_cells():
    """(label, engine factory, scheme builder) for every engine x scheme
    cell of the paper's matrix (the same grid ``repro verify`` sweeps)."""
    from repro.colstore import ColumnStoreEngine
    from repro.rowstore import RowStoreEngine
    from repro.storage import (
        build_property_table_store,
        build_triple_store,
        build_vertical_store,
    )

    return [
        ("column/triple-PSO", ColumnStoreEngine,
         lambda e, d: build_triple_store(
             e, d.triples, d.interesting_properties, clustering="PSO")),
        ("column/triple-SPO", ColumnStoreEngine,
         lambda e, d: build_triple_store(
             e, d.triples, d.interesting_properties, clustering="SPO")),
        ("column/vertical", ColumnStoreEngine,
         lambda e, d: build_vertical_store(
             e, d.triples, d.interesting_properties)),
        ("column/property-table", ColumnStoreEngine,
         lambda e, d: build_property_table_store(
             e, d.triples, d.interesting_properties)),
        ("row/triple-PSO", RowStoreEngine,
         lambda e, d: build_triple_store(
             e, d.triples, d.interesting_properties, clustering="PSO")),
        ("row/vertical", RowStoreEngine,
         lambda e, d: build_vertical_store(
             e, d.triples, d.interesting_properties)),
    ]


def result_digest(relation, dictionary, order):
    """SHA-256 over the sorted decoded rows (row order normalized)."""
    rows = sorted(relation.decoded_tuples(dictionary, order=order))
    digest = hashlib.sha256()
    for row in rows:
        digest.update(repr(row).encode())
        digest.update(b"\n")
    return f"{len(rows)}:{digest.hexdigest()}"


def timing_document(timing):
    """Exact timing fields; floats survive JSON round-trips bit-for-bit."""
    return {
        "real_seconds": timing.real_seconds,
        "user_seconds": timing.user_seconds,
        "seek_seconds": timing.seek_seconds,
        "transfer_seconds": timing.transfer_seconds,
        "bytes_read": timing.bytes_read,
        "io_requests": timing.io_requests,
    }


def parity_sweep(n_triples=4000, n_properties=60, seed=42,
                 queries=ALL_QUERY_NAMES, modes=PARITY_MODES,
                 column_engine_options=None):
    """Run the full differential sweep; returns a JSON-able document.

    *column_engine_options* are extra constructor kwargs applied to every
    column-store cell — the compression-parity test passes
    ``{"compression": "logical"}`` to assert that logical-mode compressed
    stores reproduce the uncompressed goldens bit for bit.
    """
    dataset = generate_barton(
        n_triples=n_triples,
        n_properties=n_properties,
        n_interesting=min(28, n_properties),
        seed=seed,
    )
    document = {
        "schema_version": PARITY_SCHEMA_VERSION,
        "meta": {
            "n_triples": n_triples,
            "n_properties": n_properties,
            "seed": seed,
            "modes": list(modes),
        },
        "cells": {},
    }
    for label, engine_cls, builder in parity_cells():
        options = {}
        if (column_engine_options
                and getattr(engine_cls, "kind", "") == "column-store"):
            options = dict(column_engine_options)
        engine = engine_cls(**options)
        catalog = builder(engine, dataset)
        cell = document["cells"][label] = {}
        for query in queries:
            plan = build_query(catalog, query)
            cell[query] = {}
            for mode in modes:
                if mode == "cold":
                    engine.make_cold()
                else:
                    engine.run(plan)  # unmeasured warm-up
                relation, timing = engine.run(plan)
                cell[query][mode] = {
                    "digest": result_digest(
                        relation, catalog.dictionary, plan.output_columns()
                    ),
                    "timing": timing_document(timing),
                }
    return document


def compare_parity(expected, actual):
    """Field-by-field diff of two sweep documents; returns mismatch strings
    (empty = parity holds)."""
    mismatches = []
    if expected.get("meta") != actual.get("meta"):
        mismatches.append(
            f"meta differs: {expected.get('meta')} vs {actual.get('meta')}"
        )
    expected_cells = expected.get("cells", {})
    actual_cells = actual.get("cells", {})
    for label in sorted(set(expected_cells) | set(actual_cells)):
        if label not in actual_cells:
            mismatches.append(f"{label}: missing from actual sweep")
            continue
        if label not in expected_cells:
            mismatches.append(f"{label}: unexpected extra cell")
            continue
        for query in sorted(
            set(expected_cells[label]) | set(actual_cells[label])
        ):
            left = expected_cells[label].get(query)
            right = actual_cells[label].get(query)
            if left is None or right is None:
                mismatches.append(f"{label} {query}: present on one side only")
                continue
            for mode in sorted(set(left) | set(right)):
                a, b = left.get(mode), right.get(mode)
                if a == b:
                    continue
                if a is None or b is None:
                    mismatches.append(
                        f"{label} {query} {mode}: present on one side only"
                    )
                    continue
                if a["digest"] != b["digest"]:
                    mismatches.append(
                        f"{label} {query} {mode}: result digest "
                        f"{a['digest']} != {b['digest']}"
                    )
                for field in sorted(set(a["timing"]) | set(b["timing"])):
                    if a["timing"].get(field) != b["timing"].get(field):
                        mismatches.append(
                            f"{label} {query} {mode}: timing.{field} "
                            f"{a['timing'].get(field)!r} != "
                            f"{b['timing'].get(field)!r}"
                        )
    return mismatches
