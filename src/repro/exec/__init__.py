"""repro.exec — the unified physical-operator execution layer.

One logical plan, many engines: :func:`repro.exec.registry.lower_plan`
turns a :class:`~repro.plan.logical.LogicalPlan` into a
:class:`~repro.exec.physical.PhysicalPlan` by matching nodes against the
engine-keyed operator registry, and :class:`~repro.exec.runtime.Runtime`
drives the resulting tree through a single pull/vector pipeline.  Engines
contribute operator sets (``repro.colstore.operators``,
``repro.rowstore.operators``) instead of whole interpreters; adding a new
engine or storage scheme is one registry module, not a new executor.
"""

from repro.exec.physical import PhysicalPlan, count_physical_operators, walk_physical
from repro.exec.registry import (
    EngineOperatorSet,
    Lowered,
    OperatorDef,
    engine_ops,
    lower_plan,
    match_type,
    registered_engines,
)
from repro.exec.runtime import (
    Intermediate,
    Runtime,
    Stream,
    execute_plan,
    run_plan,
)

__all__ = [
    "PhysicalPlan",
    "walk_physical",
    "count_physical_operators",
    "EngineOperatorSet",
    "Lowered",
    "OperatorDef",
    "engine_ops",
    "lower_plan",
    "match_type",
    "registered_engines",
    "Intermediate",
    "Runtime",
    "Stream",
    "execute_plan",
    "run_plan",
]
