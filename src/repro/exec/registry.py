"""The engine-keyed physical-operator registry and the lowering pass.

An engine contributes an :class:`EngineOperatorSet`: an ordered list of
:class:`OperatorDef` entries, each pairing a *match* function (does this
operator implement this logical node, and which logical children remain to
be lowered?) with an execution function.  :func:`lower_plan` walks a
logical tree top-down, binds the first matching operator per node — first
match wins, so engines register their fused/fast operators before the
generic ones — and emits the :class:`~repro.exec.physical.PhysicalPlan`
tree the shared :class:`~repro.exec.runtime.Runtime` drives.

Engines under this package's management:

* ``column-store`` — vector paradigm (:mod:`repro.colstore.operators`),
* ``row-store`` — pull paradigm (:mod:`repro.rowstore.operators`).

Registration is import-driven; :func:`engine_ops` lazily imports the
module listed in :data:`ENGINE_MODULES` the first time an engine key is
looked up, so ``import repro.plan`` stays light.
"""

import importlib

from repro.errors import EngineError
from repro.exec.physical import PhysicalPlan
from repro.observe.race import guard_lock, shared_state

#: engine key -> module that registers its operator set on import.
ENGINE_MODULES = {
    "column-store": "repro.colstore.operators",
    "row-store": "repro.rowstore.operators",
}

#: Execution paradigms the runtime knows how to drive.
PARADIGMS = ("vector", "pull")

#: engine key -> EngineOperatorSet.  Registration is import-driven, but
#: imports can race when the query server's thread pool first touches two
#: engines at once — mutate only under the lock.
_REGISTRY_LOCK = guard_lock("exec.registry._REGISTRY")
_REGISTRY = shared_state(  # guarded-by: _REGISTRY_LOCK
    "exec.registry._REGISTRY", {}, _REGISTRY_LOCK,
)


class Lowered:
    """A match outcome: which logical children still need lowering, which
    extra logical nodes the operator absorbed (fusion), free-form details
    for EXPLAIN."""

    __slots__ = ("children", "fused", "details")

    def __init__(self, children=(), fused=(), details=None):
        self.children = tuple(children)
        self.fused = tuple(fused)
        self.details = details


class OperatorDef:
    """One physical operator: its name, lowering match, and execution fn.

    *guard* optionally restricts the operator to engine instances whose
    physical state supports it (e.g. a compressed-kernel operator that
    needs the scanned segment to carry an RLE codec).  Guarded operators
    are skipped when lowering without an instance, so engine-keyed
    lowering stays deterministic.
    """

    __slots__ = ("name", "engine", "match", "fn", "description", "guard")

    def __init__(self, name, engine, match, fn, description="", guard=None):
        self.name = name
        self.engine = engine
        self.match = match
        self.fn = fn
        self.description = description
        self.guard = guard

    def __repr__(self):
        return f"OperatorDef({self.engine}/{self.name})"


class EngineOperatorSet:
    """Ordered operator registry for one engine."""

    def __init__(self, engine, paradigm):
        if paradigm not in PARADIGMS:
            raise EngineError(
                f"unknown paradigm {paradigm!r}; expected one of {PARADIGMS}"
            )
        self.engine = engine
        self.paradigm = paradigm
        self.rules = []
        with _REGISTRY_LOCK:
            if engine in _REGISTRY:
                raise EngineError(
                    f"operator set for engine {engine!r} already registered"
                )
            _REGISTRY[engine] = self

    def operator(self, name, match, description="", guard=None):
        """Decorator: register the wrapped fn as operator *name*.

        *match* maps a logical node to a :class:`Lowered` (or ``None`` for
        no match).  Registration order is priority order.  *guard*, when
        given, maps ``(engine_instance, node)`` to a bool; the rule only
        applies when lowering knows the instance and the guard accepts.
        """

        def register(fn):
            self.rules.append(
                OperatorDef(name, self.engine, match, fn, description,
                            guard=guard)
            )
            return fn

        return register

    def operator_names(self):
        return [rule.name for rule in self.rules]


def match_type(*node_types):
    """A match function accepting the given logical node types, lowering
    every logical child."""

    def match(node):
        if isinstance(node, node_types):
            return Lowered(children=node.children())
        return None

    return match


def engine_ops(engine):
    """The operator set for *engine*, importing its module on first use."""
    ops = _REGISTRY.get(engine)
    if ops is not None:
        return ops
    module = ENGINE_MODULES.get(engine)
    if module is not None:
        importlib.import_module(module)
        ops = _REGISTRY.get(engine)
        if ops is not None:
            return ops
    raise EngineError(
        f"no physical operators registered for engine {engine!r}; "
        f"known engines: {sorted(set(_REGISTRY) | set(ENGINE_MODULES))}"
    )


def registered_engines():
    """Engine keys with an operator set available (forces lazy imports)."""
    for engine in ENGINE_MODULES:
        try:
            engine_ops(engine)
        except EngineError:  # pragma: no cover - import-failure guard
            pass
    return sorted(_REGISTRY)


def lower_plan(plan, engine, instance=None):
    """Lower a logical plan to a physical tree for *engine*.

    Every logical node binds the first registered operator whose match
    accepts it; an unmatched node is an :class:`EngineError` naming the
    engine — the unified-layer replacement for the legacy executors'
    ``cannot execute`` dispatch failures.

    *instance*, when given, is the live engine object; operators with a
    ``guard`` are considered only when their guard accepts it (without an
    instance, guarded operators never match).
    """
    ops = engine_ops(engine)

    def lower(node):
        for opdef in ops.rules:
            if opdef.guard is not None and (
                instance is None or not opdef.guard(instance, node)
            ):
                continue
            lowered = opdef.match(node)
            if lowered is None:
                continue
            children = tuple(lower(child) for child in lowered.children)
            return PhysicalPlan(
                opdef, engine, node,
                children=children,
                fused=lowered.fused,
                details=lowered.details,
            )
        raise EngineError(
            f"{engine} has no physical operator for {type(node).__name__}"
        )

    return lower(plan)
