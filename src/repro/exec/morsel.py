"""Morsel-driven parallel dispatch for the unified execution layer.

A *morsel* is a contiguous row range of a base-table segment — small
enough to load-balance, large enough to amortize dispatch.  Eligible
pipeline fragments (see the guarded ``parallel-*`` operators in
:mod:`repro.colstore.operators`) split their input into morsels, run the
pure data-plane work (predicate masks, position narrowing, column
gathers) on a shared work-stealing :class:`WorkerPool`, and merge the
per-morsel results **by morsel index** — never by completion order — so
the merged arrays are bit-identical to what the serial operator would
have produced.

Cost accounting never runs on a worker.  Workers touch numpy arrays
only; the coordinator replays every buffer-pool read and clock charge in
the exact serial order after the barrier (buffer-pool request counts
depend on global access order, and float accumulation is not
associative, so per-worker cost shards could never fold back exactly).
This is the determinism contract the parity suite gates on: rows AND
simulated-cost documents are byte-identical at any worker count.

The pool is process-wide (:func:`shared_pool`) so server sessions share
one set of helper threads; the calling thread always participates as
lane 0, so ``dop`` workers means ``dop - 1`` helpers.  Cancellation fans
out through the batch: every lane polls the query's
:class:`~repro.exec.cancel.CancellationToken` between tasks, and the
first observation aborts all lanes.
"""

import collections
import os
import threading

from repro.observe.race import guard_lock, shared_state

#: Environment switch for the default engine degree of parallelism.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the morsel row-range size.
MORSEL_ROWS_ENV = "REPRO_MORSEL_ROWS"

#: Default rows per morsel.  Fixed independently of the worker count so
#: morsel boundaries — and therefore the merge order — never depend on
#: how many workers happen to be configured.
DEFAULT_MORSEL_ROWS = 4096

#: Hard cap on the degree of parallelism (helper threads are cheap but
#: not free; beyond this the simulated engine gains nothing).
MAX_WORKERS = 16

_MORSEL_STATS_LOCK = guard_lock("exec.morsel.stats")
#: Process-wide morsel dispatch counters (informational — steal counts
#: depend on thread scheduling and are deliberately not byte-gated).
MORSEL_STATS = shared_state(  # guarded-by: _MORSEL_STATS_LOCK
    "exec.morsel.stats",
    {"batches": 0, "inline_batches": 0, "morsels": 0, "steals": 0},
    _MORSEL_STATS_LOCK,
)


def morsel_stats():
    """A plain-dict snapshot of the process-wide dispatch counters."""
    with _MORSEL_STATS_LOCK:
        return dict(MORSEL_STATS)


def reset_morsel_stats():
    """Zero the dispatch counters (test isolation, ``repro perf``)."""
    with _MORSEL_STATS_LOCK:
        MORSEL_STATS.update(
            {"batches": 0, "inline_batches": 0, "morsels": 0, "steals": 0}
        )


def workers_from_env(default=1):
    """The ``REPRO_WORKERS`` degree of parallelism, clamped to
    ``[1, MAX_WORKERS]``; *default* when unset or unparsable."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, min(value, MAX_WORKERS))


def morsel_rows_from_env(default=DEFAULT_MORSEL_ROWS):
    """The ``REPRO_MORSEL_ROWS`` morsel size; *default* when unset."""
    raw = os.environ.get(MORSEL_ROWS_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, value)


def split_morsels(lo, hi, rows):
    """Split the row range ``[lo, hi)`` into ``(mlo, mhi)`` morsels of at
    most *rows* rows each, in ascending order."""
    rows = max(1, int(rows))
    return [(start, min(start + rows, hi)) for start in range(lo, hi, rows)]


class ParallelContext:
    """Engine-side handle installed by ``install_parallelism``: the
    configured degree of parallelism, the shared pool, and the morsel
    size.  Lowering guards only test for the handle's *presence* — the
    effective per-query dop is a runtime clamp (``Runtime.dop_override``)
    so cached lowered plans never go stale."""

    __slots__ = ("dop", "pool", "morsel_rows")

    def __init__(self, dop, pool, morsel_rows=DEFAULT_MORSEL_ROWS):
        self.dop = max(1, int(dop))
        self.pool = pool
        self.morsel_rows = max(1, int(morsel_rows))


def effective_dop(runtime, context):
    """The degree of parallelism for the current query: the engine's
    configured dop, clamped down (never up) by the per-query admission
    override the server or API installed on the runtime."""
    dop = context.dop
    override = getattr(runtime, "dop_override", None)
    if override is not None:
        dop = min(dop, max(1, int(override)))
    return dop


class _Batch:
    """One dispatched set of morsel tasks with per-lane deques.

    Tasks are dealt round-robin by morsel index; an idle lane first
    drains its own deque from the head, then steals from the *tail* of a
    victim's deque.  ``results`` is indexed by task position, so the
    merge downstream is keyed by morsel index regardless of which lane
    ran which task.  The internal lock is a plain leaf lock: it guards
    only this batch's bookkeeping and nothing else is acquired under it.
    """

    __slots__ = ("tasks", "lanes", "deques", "results", "errors", "abort",
                 "steals", "pending", "done", "cancel_token", "lock")

    def __init__(self, tasks, lanes, cancel_token=None):
        self.tasks = tasks
        self.lanes = lanes
        self.deques = [collections.deque() for _ in range(lanes)]
        for index in range(len(tasks)):
            self.deques[index % lanes].append(index)
        self.results = [None] * len(tasks)
        self.errors = []
        self.abort = False
        self.steals = 0
        self.pending = len(tasks)
        self.done = threading.Event()
        self.cancel_token = cancel_token
        self.lock = threading.Lock()

    def _next_index(self, lane):
        with self.lock:
            if self.abort:
                return None
            own = self.deques[lane]
            if own:
                return own.popleft()
            for offset in range(1, self.lanes):
                victim = self.deques[(lane + offset) % self.lanes]
                if victim:
                    self.steals += 1
                    return victim.pop()
        return None

    def _mark_abort(self, error=None):
        with self.lock:
            if error is not None:
                self.errors.append(error)
            self.abort = True
        self.done.set()

    def _task_done(self):
        with self.lock:
            self.pending -= 1
            finished = self.pending == 0
        if finished:
            self.done.set()

    def run_lane(self, lane):
        """Drain tasks on the calling thread until the batch is empty,
        aborted, or cancelled."""
        token = self.cancel_token
        while True:
            if self.abort:
                return
            if token is not None and token.is_set():
                self._mark_abort()
                return
            index = self._next_index(lane)
            if index is None:
                return
            try:
                self.results[index] = self.tasks[index]()
            except BaseException as exc:  # first error aborts all lanes
                self._mark_abort(exc)
                return
            self._task_done()


class WorkerPool:
    """A process-wide pool of persistent helper threads.

    The pool holds at most one posted batch at a time (``run_batch``
    serializes submitters), helpers pick it up lane-by-lane, and the
    calling thread always runs lane 0 — a ``dop``-way batch therefore
    needs only ``dop - 1`` helpers.  Completion is tracked per *task*,
    not per lane, so a helper that is still finishing an older batch (or
    that never wakes) costs load balance, never correctness: the caller
    and the remaining lanes steal the stragglers.
    """

    def __init__(self, helpers):
        self.helpers = max(0, int(helpers))
        self._cond = threading.Condition()
        self._batch = None
        self._seq = 0
        self._shutdown = False
        self._submit_lock = threading.Lock()
        self._threads = []
        for lane in range(1, self.helpers + 1):
            thread = threading.Thread(
                target=self._helper_loop,
                args=(lane,),
                name=f"repro-morsel-{lane}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _helper_loop(self, lane):
        seen = 0
        while True:
            with self._cond:
                while not self._shutdown and (
                    self._batch is None
                    or self._seq == seen
                    or lane >= self._batch.lanes
                ):
                    self._cond.wait()
                if self._shutdown:
                    return
                batch = self._batch
                seen = self._seq
            batch.run_lane(lane)

    def shutdown(self):
        """Stop the helper threads (used when the shared pool grows)."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def run_batch(self, tasks, dop, cancel_token=None):
        """Run *tasks* (zero-argument callables) at up to *dop* lanes.

        Returns ``(results, steals)`` with ``results`` ordered by task
        index.  Raises the first task error, or the cancellation error
        if the query's token fired mid-batch.  ``dop <= 1`` (or a single
        task) runs inline on the caller with no pool traffic at all.
        """
        lanes = max(1, min(int(dop), self.helpers + 1, len(tasks)))
        if lanes <= 1:
            results = []
            for task in tasks:
                if cancel_token is not None:
                    cancel_token.raise_if_cancelled()
                results.append(task())
            _note_batch(len(tasks), 0, inline=True)
            return results, 0
        batch = _Batch(tasks, lanes, cancel_token=cancel_token)
        with self._submit_lock:
            with self._cond:
                self._batch = batch
                self._seq += 1
                self._cond.notify_all()
            try:
                batch.run_lane(0)
                batch.done.wait()
            finally:
                with self._cond:
                    self._batch = None
        if batch.errors:
            raise batch.errors[0]
        if cancel_token is not None:
            cancel_token.raise_if_cancelled()
        _note_batch(len(tasks), batch.steals, inline=False)
        return batch.results, batch.steals


def _note_batch(n_tasks, steals, inline):
    with _MORSEL_STATS_LOCK:
        key = "inline_batches" if inline else "batches"
        MORSEL_STATS[key] += 1
        MORSEL_STATS["morsels"] += n_tasks
        MORSEL_STATS["steals"] += steals


_POOL_LOCK = guard_lock("exec.morsel.pool")
#: The process-wide shared pool slot (grown on demand, never shrunk).
_POOL_STATE = shared_state(  # guarded-by: _POOL_LOCK
    "exec.morsel.pool", {"pool": None}, _POOL_LOCK
)


def shared_pool(helpers):
    """The process-wide :class:`WorkerPool`, grown to at least *helpers*
    helper threads.  Sessions of one server share this pool, so the
    total helper count is bounded by the largest engine dop, not the
    session count."""
    helpers = max(0, int(helpers))
    with _POOL_LOCK:
        pool = _POOL_STATE["pool"]
        if pool is None or pool.helpers < helpers:
            old = pool
            pool = WorkerPool(helpers)
            _POOL_STATE["pool"] = pool
            if old is not None:
                old.shutdown()
        return pool
