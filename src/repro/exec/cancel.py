"""Cooperative query cancellation.

The simulated engines are synchronous: once :meth:`Runtime.execute`
starts, nothing preempts it.  Long-lived callers (the query server's
per-query timeouts, interactive Ctrl-C handling) still need a way to stop
a running query without corrupting shared state — the buffer pool is
shared across sessions, so killing a thread mid-read is not an option.

A :class:`CancellationToken` is the contract: the controller sets it (from
any thread — a ``threading.Timer`` for deadlines, a signal handler, an
admin endpoint) and the runtime polls it at operator boundaries (vector
paradigm) or per tuple pull (pull paradigm), raising
:class:`~repro.errors.QueryCancelled` so the physical tree unwinds through
ordinary exception propagation.  Polling a pre-set flag costs one
attribute read; no wall clock is consulted anywhere in the engine paths.
"""

import threading

from repro.errors import QueryCancelled


class CancellationToken:
    """A one-shot, thread-safe cancellation flag.

    ``cancel()`` may be called from any thread, any number of times; the
    first call wins and its *reason* is what :meth:`raise_if_cancelled`
    reports.  Tokens are single-use: create a fresh one per query.
    """

    __slots__ = ("_event", "_reason", "_lock")

    def __init__(self):
        self._event = threading.Event()
        self._reason = None
        self._lock = threading.Lock()

    def cancel(self, reason="cancelled"):
        """Request cancellation; returns True if this call was the first."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    def is_set(self):
        return self._event.is_set()

    @property
    def reason(self):
        return self._reason

    def raise_if_cancelled(self):
        """Raise :class:`QueryCancelled` when the token has been set."""
        if self._event.is_set():
            raise QueryCancelled(
                f"query cancelled: {self._reason or 'cancelled'}"
            )
