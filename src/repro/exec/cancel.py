"""Cooperative query cancellation.

The simulated engines are synchronous: once :meth:`Runtime.execute`
starts, nothing preempts it.  Long-lived callers (the query server's
per-query timeouts, interactive Ctrl-C handling) still need a way to stop
a running query without corrupting shared state — the buffer pool is
shared across sessions, so killing a thread mid-read is not an option.

A :class:`CancellationToken` is the contract: the controller sets it (from
any thread — a ``threading.Timer`` for deadlines, a signal handler, an
admin endpoint) and the runtime polls it at operator boundaries (vector
paradigm) or per tuple pull (pull paradigm), raising
:class:`~repro.errors.QueryCancelled` so the physical tree unwinds through
ordinary exception propagation.  Polling a pre-set flag costs one
attribute read; no wall clock is consulted anywhere in the engine paths.
"""

import threading

from repro.errors import QueryCancelled, ReproError


class CancellationToken:
    """A one-shot, thread-safe cancellation flag.

    ``cancel()`` may be called from any thread, any number of times; the
    first call wins and its *reason* is what :meth:`raise_if_cancelled`
    reports.  Tokens are single-use: create a fresh one per query.
    :meth:`bind` enforces that — the executor claims the token once, and
    a second claim (token reuse across queries) raises
    :class:`~repro.errors.ReproError` instead of silently inheriting a
    stale cancellation.
    """

    __slots__ = ("_event", "_reason", "_lock", "_bound")

    def __init__(self):
        self._event = threading.Event()
        self._reason = None
        self._lock = threading.Lock()
        self._bound = False

    def bind(self):
        """Claim this token for exactly one query; returns the token.

        Raises :class:`~repro.errors.ReproError` on a second bind: a
        token that already drove one query may carry its cancellation
        state, and reusing it would cancel (or fail to cancel) the wrong
        query.
        """
        with self._lock:
            if self._bound:
                raise ReproError(
                    "CancellationToken is single-use: it already drove a "
                    "query; create a fresh token per query"
                )
            self._bound = True
            return self

    def cancel(self, reason="cancelled"):
        """Request cancellation; returns True if this call was the first."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    def is_set(self):
        return self._event.is_set()

    @property
    def reason(self):
        return self._reason

    def raise_if_cancelled(self):
        """Raise :class:`QueryCancelled` when the token has been set."""
        if self._event.is_set():
            raise QueryCancelled(
                f"query cancelled: {self._reason or 'cancelled'}"
            )
