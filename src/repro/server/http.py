"""``repro serve`` — the long-lived HTTP query front-end.

Zero-dependency (stdlib :mod:`http.server`) so the container needs
nothing new.  The request handler goes through :mod:`repro.api` — every
query runs as ``Session.query`` on a session scheduler over one shared
:class:`~repro.api.Connection`, so all clients contend for one buffer
pool, exactly like sessions of a real database server.

Wire protocol (JSON over HTTP):

``POST /v1/query``
    Body ``{"query": "...", "timeout": seconds?, "lint": mode?,
    "session": id?}``.  200 with the
    :meth:`repro.api.Result.to_dict` document plus wall-clock
    ``queue_ms`` / ``exec_ms``; 408 on deadline expiry; 429 when the
    admission queue is full; 400 on parse/plan errors.
``POST /v1/sessions`` / ``DELETE /v1/sessions/<id>``
    Explicit session lifecycle (optional — anonymous queries run on a
    per-worker session).  Sessions carry defaults: body may set
    ``{"timeout": seconds, "lint": mode}``.
``GET /v1/stats``
    Scheduler + store counters as JSON.
``GET /metrics``
    The scheduler registry in Prometheus text exposition format.
``GET /healthz``
    Liveness.

Graceful shutdown (SIGINT/SIGTERM or :meth:`QueryServer.close`) stops
admission first and drains in-flight queries before the listener exits.
"""

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    QueryTimeout,
    ReproError,
    ServerOverloaded,
    SessionClosed,
)
from repro.observe.export import metrics_to_prometheus
from repro.observe.log import get_logger
from repro.server.scheduler import SchedulerConfig, SessionScheduler

log = get_logger("server.http")


class QueryServer:
    """The serving stack: connection + scheduler + HTTP listener."""

    def __init__(self, connection, host="127.0.0.1", port=8737,
                 workers=4, queue_depth=64, default_timeout=None,
                 max_dop=None):
        self.connection = connection
        self.scheduler = SessionScheduler(
            connection,
            SchedulerConfig(
                workers=workers,
                queue_depth=queue_depth,
                default_timeout=default_timeout,
                max_dop=max_dop,
            ),
        )
        self._sessions = {}   # id -> {"timeout": ..., "lint": ...}
        self._session_lock = threading.Lock()
        self._session_counter = 0
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._serve_thread = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self):
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Serve in a background thread; returns immediately."""
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http",
            daemon=True,
        )
        self._serve_thread.start()
        log.info("serving on %s (%d workers, queue depth %d)",
                 self.address, self.scheduler.config.workers,
                 self.scheduler.config.queue_depth)
        return self

    def serve_forever(self):
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        # A process backgrounded by a non-interactive shell (`repro
        # serve ... &` in CI) inherits SIGINT as ignored, and SIGTERM's
        # default disposition would kill us without draining — route
        # both through the KeyboardInterrupt path so shutdown always
        # drains in-flight queries.  signal.signal only works on the
        # main thread; elsewhere fall back to plain Ctrl-C handling.
        try:
            def _interrupt(signum, frame):
                raise KeyboardInterrupt
            signal.signal(signal.SIGINT, _interrupt)
            signal.signal(signal.SIGTERM, _interrupt)
        except ValueError:
            pass
        log.info("serving on %s (%d workers, queue depth %d)",
                 self.address, self.scheduler.config.workers,
                 self.scheduler.config.queue_depth)
        try:
            self.httpd.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self):
        """Graceful shutdown: stop admission, drain in-flight queries,
        then stop the listener."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.shutdown(drain=True)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        log.info("server stopped")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- session bookkeeping -------------------------------------------

    def create_session(self, defaults):
        with self._session_lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
            self._sessions[session_id] = {
                "timeout": defaults.get("timeout"),
                "lint": defaults.get("lint"),
            }
        return session_id

    def drop_session(self, session_id):
        with self._session_lock:
            return self._sessions.pop(session_id, None) is not None

    def session_defaults(self, session_id):
        with self._session_lock:
            defaults = self._sessions.get(session_id)
        if defaults is None:
            raise SessionClosed(f"no such session {session_id!r}")
        return defaults

    # -- request handling (transport-independent) -----------------------

    def handle_query(self, body):
        """Run one query request dict; returns ``(status, document)``."""
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            return 400, {"error": "body must carry a non-empty 'query'"}
        kwargs = {}
        session_id = body.get("session")
        if session_id is not None:
            try:
                defaults = self.session_defaults(session_id)
            except SessionClosed as exc:
                return 404, {"error": str(exc)}
            kwargs.update(
                {k: v for k, v in defaults.items() if v is not None}
            )
        for key in ("timeout", "lint", "mode", "scope", "workers"):
            if body.get(key) is not None:
                kwargs[key] = body[key]
        if body.get("optimize"):
            kwargs["optimize"] = True
        try:
            request = self.scheduler.submit(text, **kwargs)
        except ServerOverloaded as exc:
            return 429, {"error": str(exc)}
        except SessionClosed as exc:
            return 503, {"error": str(exc)}
        request.done.wait()
        if request.error is not None:
            return self._error_response(request)
        document = request.result.to_dict()
        document["queue_ms"] = round(request.queue_ms, 3)
        document["exec_ms"] = round(request.exec_ms, 3)
        if session_id is not None:
            document["session"] = session_id
        return 200, document

    @staticmethod
    def _error_response(request):
        error = request.error
        if isinstance(error, QueryTimeout):
            status = 408
        elif isinstance(error, ServerOverloaded):
            status = 429
        elif isinstance(error, SessionClosed):
            status = 503
        else:
            status = 400 if isinstance(error, ReproError) else 500
        document = {
            "error": str(error),
            "error_type": type(error).__name__,
        }
        if request.queue_ms is not None:
            document["queue_ms"] = round(request.queue_ms, 3)
        return status, document

    def stats_document(self):
        store = self.connection.store
        document = self.scheduler.stats()
        document["store"] = {
            "engine": store.engine_kind,
            "scheme": store.scheme,
            "n_triples": store.n_triples,
            "database_bytes": store.database_bytes(),
            "buffer_pool": store.engine.pool.stats(),
            "buffer_hit_ratio": store.engine.pool.hit_ratio(),
        }
        document["plan_cache"] = self.connection.plan_cache_stats()
        from repro.exec.morsel import morsel_stats

        engine = store.engine
        context = (
            engine.parallelism() if hasattr(engine, "parallelism") else None
        )
        document["parallel"] = {
            "engine_workers": getattr(engine, "workers", 1),
            "pool_helpers": 0 if context is None else context.pool.helpers,
            "morsel_rows": None if context is None else context.morsel_rows,
            "max_dop": self.scheduler.config.max_dop,
            **morsel_stats(),
        }
        with self._session_lock:
            document["sessions"] = {"open": len(self._sessions)}
        from repro.observe.race import race_check_enabled, race_report

        if race_check_enabled():
            document["race"] = race_report()
        return document


def _make_handler(server):
    """A BaseHTTPRequestHandler bound to *server* (stdlib handlers are
    classes, not closures — bind via subclass attribute)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        query_server = server

        # -- plumbing ---------------------------------------------------

        def log_message(self, fmt, *args):
            log.debug("%s - %s", self.address_string(), fmt % args)

        def _send_json(self, status, document):
            payload = json.dumps(document, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ValueError(f"malformed JSON body: {exc}") from exc
            if not isinstance(body, dict):
                raise ValueError("JSON body must be an object")
            return body

        # -- routes -----------------------------------------------------

        def do_GET(self):
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/v1/stats":
                self._send_json(200, self.query_server.stats_document())
            elif self.path == "/metrics":
                self.query_server.scheduler.publish_plan_cache(
                    self.query_server.connection.plan_cache_stats()
                )
                text = metrics_to_prometheus(
                    self.query_server.scheduler.registry
                )
                payload = text.encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})

        def do_POST(self):
            try:
                body = self._read_body()
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            if self.path == "/v1/query":
                status, document = self.query_server.handle_query(body)
                self._send_json(status, document)
            elif self.path == "/v1/sessions":
                session_id = self.query_server.create_session(body)
                self._send_json(201, {"session": session_id})
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})

        def do_DELETE(self):
            prefix = "/v1/sessions/"
            if self.path.startswith(prefix):
                session_id = self.path[len(prefix):]
                if self.query_server.drop_session(session_id):
                    self._send_json(200, {"session": session_id,
                                          "closed": True})
                else:
                    self._send_json(404, {
                        "error": f"no such session {session_id!r}"
                    })
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})

    return Handler


def serve(connection, host="127.0.0.1", port=8737, workers=4,
          queue_depth=64, default_timeout=None, background=False,
          max_dop=None):
    """Stand up a :class:`QueryServer` over *connection*.

    With ``background=True`` the listener runs on a daemon thread and the
    started server is returned (use as a context manager or call
    :meth:`QueryServer.close`); otherwise this call serves until
    interrupted.  ``port=0`` picks a free ephemeral port — read
    :attr:`QueryServer.address` for the bound URL.
    """
    server = QueryServer(
        connection, host=host, port=port, workers=workers,
        queue_depth=queue_depth, default_timeout=default_timeout,
        max_dop=max_dop,
    )
    if background:
        return server.start()
    server.serve_forever()
    return server
