"""``repro replay`` — a Zipf-skewed workload generator and replay harness.

Real SPARQL workloads are frequency-skewed mixes of a few pattern shapes
(Arias et al., "An empirical study of real-world SPARQL queries"), so the
generator samples the Barton benchmark queries (q1–q8 plus the
parameterized ``*`` variants) from a Zipf distribution over a seeded RNG:
the same seed always yields the same query sequence.

Two drive modes share one harness:

* **in-process** — each client thread opens its own
  :class:`~repro.api.Session` on a shared :class:`~repro.api.Connection`
  and issues queries directly; this is the mode whose single-client serial
  replay is byte-identical (simulated costs) to a hand-written
  ``Session.query`` loop, because it *is* that loop.
* **HTTP** — clients POST ``/v1/query`` to a running ``repro serve``
  instance (stdlib :mod:`urllib`), exercising admission control; 429
  rejections are retried with backoff and counted separately.

Latencies land in a :class:`~repro.observe.metrics.MetricsRegistry`
histogram (p50/p95/p99 via the same quantile machinery the observability
layer already ships), and :func:`record_from_replay` turns a report into a
:class:`~repro.observe.history.RunRecord` for the perf ledger — with the
ordered per-query **simulated** costs as the byte-identity section when
the replay was serial, and ``None`` (plus an explanatory note) when
concurrent interleaving makes per-query pool state order-dependent.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.data.zipf import zipf_weights
from repro.errors import QueryTimeout, ReproError, ServerOverloaded
from repro.observe.history import (
    RunRecord,
    collect_counters,
    config_fingerprint,
    git_sha,
)
from repro.observe.log import get_logger
from repro.observe.metrics import MetricsRegistry
from repro.queries import ALL_QUERY_NAMES

log = get_logger("server.replay")

#: How often a 429-rejected HTTP request is retried before counting as
#: failed, and the base backoff between attempts (seconds, linear).
REJECT_RETRIES = 20
REJECT_BACKOFF = 0.02


class WorkloadMix:
    """A Zipf-skewed categorical distribution over benchmark queries."""

    def __init__(self, names=None, exponent=1.0, seed=17):
        self.names = list(names) if names is not None else list(ALL_QUERY_NAMES)
        if not self.names:
            raise ReproError("workload mix needs at least one query name")
        unknown = sorted(set(self.names) - set(ALL_QUERY_NAMES))
        if unknown:
            raise ReproError(
                f"unknown benchmark queries in mix: {unknown}; "
                f"choose from {sorted(ALL_QUERY_NAMES)}"
            )
        self.exponent = float(exponent)
        self.seed = int(seed)
        self.weights = [float(w) for w in zipf_weights(len(self.names),
                                                       self.exponent)]

    def sample(self, n, stream=0):
        """A deterministic sequence of *n* query names.

        *stream* derives an independent RNG stream from the mix seed —
        duration-bounded clients each draw from their own stream so the
        sequence never depends on thread timing.
        """
        rng = random.Random(self.seed * 1000003 + stream)
        return rng.choices(self.names, weights=self.weights, k=n)

    def frequency(self):
        """``{name: weight}`` — the mix as a JSON-ready dict."""
        return dict(zip(self.names, self.weights))


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs for one replay run."""

    clients: int = 4
    queries: int = 200            # total across all clients (count mode)
    duration: object = None       # seconds; overrides `queries` when set
    timeout: object = None        # per-query timeout (seconds)
    seed: int = 17
    exponent: float = 1.0
    names: object = None          # query subset; None = all benchmark queries

    def __post_init__(self):
        if self.clients < 1:
            raise ReproError("replay needs at least one client")
        if self.duration is None and self.queries < 1:
            raise ReproError("replay needs at least one query")
        if self.duration is not None and self.duration <= 0:
            raise ReproError("replay duration must be positive")

    def mix(self):
        return WorkloadMix(names=self.names, exponent=self.exponent,
                           seed=self.seed)


@dataclass
class ReplayReport:
    """The outcome of one replay run (JSON-ready via :meth:`to_dict`)."""

    clients: int
    issued: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    rejections: int = 0          # 429s absorbed by retry (HTTP mode)
    wall_seconds: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    queue_wait_ms: dict = field(default_factory=dict)
    per_query: dict = field(default_factory=dict)
    simulated: object = None     # ordered per-query costs (serial only)
    errors: list = field(default_factory=list)

    @property
    def throughput_qps(self):
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def to_dict(self):
        return {
            "clients": self.clients,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "rejections": self.rejections,
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_qps": round(self.throughput_qps, 3),
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "per_query": dict(sorted(self.per_query.items())),
            "simulated": self.simulated,
            "errors": list(self.errors),
        }

    def summary_text(self):
        """Human-readable latency report for the CLI."""
        lines = [
            f"clients            {self.clients}",
            f"queries issued     {self.issued}",
            f"completed          {self.completed}",
            f"failed             {self.failed}",
            f"timeouts           {self.timeouts}",
            f"rejections (429)   {self.rejections}",
            f"wall seconds       {self.wall_seconds:.3f}",
            f"throughput         {self.throughput_qps:.2f} queries/s",
        ]
        latency = self.latency_ms
        if latency.get("count"):
            lines.append(
                "latency ms         "
                f"p50 {latency['p50']:.2f}  p95 {latency['p95']:.2f}  "
                f"p99 {latency['p99']:.2f}  max {latency['max']:.2f}"
            )
        mix = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.per_query.items())
        )
        if mix:
            lines.append(f"query mix          {mix}")
        for error in self.errors:
            lines.append(f"error              {error}")
        return "\n".join(lines)


class _Collector:
    """Thread-safe accumulation of per-query outcomes into a registry."""

    def __init__(self, clients):
        self.registry = MetricsRegistry()
        self.lock = threading.Lock()
        self.report = ReplayReport(clients=clients)
        self.costs = {}  # issue index -> {"query": ..., "cost": ...}

    def record(self, index, name, outcome, latency_ms, cost=None,
               queue_ms=None, error=None):
        with self.lock:
            report = self.report
            report.issued += 1
            report.per_query[name] = report.per_query.get(name, 0) + 1
            self.registry.counter("replay.queries", outcome=outcome).inc()
            if outcome == "completed":
                report.completed += 1
                self.registry.histogram("replay.latency_ms").observe(
                    latency_ms
                )
                if queue_ms is not None:
                    self.registry.histogram("replay.queue_wait_ms").observe(
                        queue_ms
                    )
                if cost is not None:
                    self.costs[index] = {"query": name, "cost": cost}
            elif outcome == "timeout":
                report.timeouts += 1
            else:
                report.failed += 1
            if error is not None and len(report.errors) < 5:
                report.errors.append(f"{name}: {error}")

    def count_rejection(self):
        with self.lock:
            self.report.rejections += 1
            self.registry.counter(
                "replay.queries", outcome="rejected"
            ).inc()

    def finish(self, wall_seconds, serial):
        report = self.report
        report.wall_seconds = wall_seconds
        report.latency_ms = self.registry.histogram(
            "replay.latency_ms"
        ).summary()
        report.queue_wait_ms = self.registry.histogram(
            "replay.queue_wait_ms"
        ).summary()
        if serial:
            report.simulated = [
                self.costs[i] for i in sorted(self.costs)
            ]
        return report


def run_replay(connection=None, url=None, config=None):
    """Drive a replay workload; returns a :class:`ReplayReport`.

    Exactly one target: *connection* (in-process sessions) or *url* (a
    running ``repro serve`` endpoint).  With ``config.clients == 1`` and a
    query count, the sampled sequence executes serially in order and the
    report carries the ordered per-query simulated costs.
    """
    if (connection is None) == (url is None):
        raise ReproError("run_replay needs exactly one of connection=, url=")
    config = config or ReplayConfig()
    mix = config.mix()
    collector = _Collector(config.clients)
    serial = config.clients == 1 and config.duration is None

    if config.duration is None:
        sequence = mix.sample(config.queries)
        # Round-robin partition keeps the serial (1-client) order exact.
        plans = [
            list(enumerate(sequence))[i::config.clients]
            for i in range(config.clients)
        ]
        deadline = None
    else:
        plans = [None] * config.clients
        deadline = time.monotonic() + config.duration

    run_one = (
        _session_client(connection, config, collector)
        if connection is not None
        else _http_client(url, config, collector)
    )

    def client_loop(client_index):
        if plans[client_index] is not None:
            for index, name in plans[client_index]:
                run_one(index, name)
            return
        rng_stream = client_index + 1
        issued = 0
        batch = mix.sample(1024, stream=rng_stream)
        while time.monotonic() < deadline:
            if issued >= len(batch):
                batch.extend(mix.sample(1024, stream=rng_stream + issued))
            run_one(-1, batch[issued])
            issued += 1

    started = time.monotonic()
    if config.clients == 1:
        client_loop(0)
    else:
        threads = [
            threading.Thread(
                target=client_loop, args=(i,),
                name=f"replay-client-{i}", daemon=True,
            )
            for i in range(config.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = time.monotonic() - started
    report = collector.finish(wall, serial)
    log.info(
        "replay done: %d/%d completed in %.2fs (%.1f q/s)",
        report.completed, report.issued, wall, report.throughput_qps,
    )
    return report


def _session_client(connection, config, collector):
    """In-process drive: one Session per client thread, direct queries."""
    local = threading.local()

    def run_one(index, name):
        session = getattr(local, "session", None)
        if session is None:
            session = local.session = connection.session(
                default_timeout=config.timeout
            )
        started = time.monotonic()
        try:
            result = session.query(name)
        except QueryTimeout as exc:
            collector.record(index, name, "timeout",
                             (time.monotonic() - started) * 1000.0,
                             error=str(exc))
            return
        except ReproError as exc:
            collector.record(index, name, "failed",
                             (time.monotonic() - started) * 1000.0,
                             error=str(exc))
            return
        collector.record(index, name, "completed",
                         (time.monotonic() - started) * 1000.0,
                         cost=result.cost_dict())

    return run_one


def _http_client(url, config, collector):
    """HTTP drive: POST /v1/query with bounded retry on 429."""
    endpoint = url.rstrip("/") + "/v1/query"

    def run_one(index, name):
        body = {"query": name}
        if config.timeout is not None:
            body["timeout"] = config.timeout
        payload = json.dumps(body).encode("utf-8")
        started = time.monotonic()
        for attempt in range(REJECT_RETRIES + 1):
            request = urllib.request.Request(
                endpoint, data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    document = json.loads(response.read().decode("utf-8"))
                latency = (time.monotonic() - started) * 1000.0
                collector.record(index, name, "completed", latency,
                                 cost=document.get("cost"),
                                 queue_ms=document.get("queue_ms"))
                return
            except urllib.error.HTTPError as exc:
                status = exc.code
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get(
                        "error", ""
                    )
                except (ValueError, UnicodeDecodeError):
                    detail = ""
                if status == 429 and attempt < REJECT_RETRIES:
                    collector.count_rejection()
                    time.sleep(REJECT_BACKOFF * (attempt + 1))
                    continue
                latency = (time.monotonic() - started) * 1000.0
                outcome = "timeout" if status == 408 else "failed"
                collector.record(index, name, outcome, latency,
                                 error=f"HTTP {status}: {detail}")
                return
            except (urllib.error.URLError, OSError) as exc:
                latency = (time.monotonic() - started) * 1000.0
                collector.record(index, name, "failed", latency,
                                 error=str(exc))
                return

    return run_one


def record_from_replay(report, name="replay", parameters=None, notes=()):
    """Build a ledger :class:`~repro.observe.history.RunRecord` from a
    replay report (``repro replay --record`` / ``repro perf record``).

    Serial single-client replays carry the ordered per-query simulated
    costs as the byte-identity section; concurrent replays record ``None``
    there — interleaving makes per-query buffer-pool state order-dependent,
    so only wall-clock latency and counters are meaningful.
    """
    from datetime import datetime, timezone

    parameters = dict(parameters or {})
    parameters.setdefault("clients", report.clients)
    parameters.setdefault("issued", report.issued)
    notes = list(notes)
    if report.simulated is None:
        notes.append(
            "concurrent replay: per-query simulated costs omitted "
            "(interleaving-dependent buffer-pool state)"
        )
    document = report.to_dict()
    return RunRecord(
        name=name,
        kind="replay",
        recorded_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_sha=git_sha(),
        config_fingerprint=config_fingerprint(parameters),
        parameters=parameters,
        simulated=report.simulated,
        wall_ms=round(report.wall_seconds * 1000.0, 3),
        counters=collect_counters(),
        notes=notes + [
            "latency_ms: " + json.dumps(
                {k: document["latency_ms"].get(k)
                 for k in ("count", "p50", "p95", "p99")},
                sort_keys=True,
            ),
            f"throughput_qps: {document['throughput_qps']}",
        ],
    )
