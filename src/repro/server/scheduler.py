"""The session scheduler: bounded admission, worker threads, deadlines.

One :class:`SessionScheduler` fronts one :class:`repro.api.Connection`.
Requests enter a **bounded** queue (`queue.Queue(maxsize=queue_depth)`);
when it is full, :meth:`submit` raises
:class:`~repro.errors.ServerOverloaded` immediately — backpressure is
explicit, never unbounded buffering.  N worker threads drain the queue,
each through its own :class:`~repro.api.Session`; execution itself
serializes on the connection's lock (the simulated engine is
single-threaded), so concurrency shows up as *interleaving* at query
granularity: queries contend for the shared buffer pool, and a request's
latency decomposes into queue wait + execution.

Deadlines are enforced twice: a request whose deadline passed while still
queued is failed without ever touching the engine, and a request that
starts executing arms the runtime's cooperative
:class:`~repro.exec.cancel.CancellationToken` through
``Session.query(timeout=...)``.

All accounting (accepted / rejected / completed / failed / timeout
counters, queue-wait / execution / total latency histograms in
milliseconds, queue-depth gauge) lands in a
:class:`~repro.observe.metrics.MetricsRegistry` owned by the scheduler,
mutated only under an internal lock, and exportable as JSON or Prometheus
text via the existing :mod:`repro.observe` exporters.
"""

import queue
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    QueryTimeout,
    ReproError,
    ServerOverloaded,
    SessionClosed,
)
from repro.observe.log import get_logger
from repro.observe.metrics import MetricsRegistry

log = get_logger("server.scheduler")


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs for a :class:`SessionScheduler`."""

    workers: int = 4
    queue_depth: int = 64
    default_timeout: object = None  # seconds, None = no deadline
    #: Per-query degree-of-parallelism admission cap: a request asking for
    #: more intra-query workers than this is clamped, never rejected.
    #: ``None`` admits whatever the engine is configured for.
    max_dop: object = None

    def __post_init__(self):
        if self.workers < 1:
            raise ReproError("scheduler needs at least one worker")
        if self.queue_depth < 1:
            raise ReproError("queue depth must be >= 1")
        if self.max_dop is not None and int(self.max_dop) < 1:
            raise ReproError("max_dop must be >= 1 (or None)")


class _Request:
    """One enqueued query plus its completion plumbing."""

    __slots__ = ("text", "kwargs", "deadline", "enqueued_at", "done",
                 "result", "error", "queue_ms", "exec_ms")

    def __init__(self, text, kwargs, deadline):
        self.text = text
        self.kwargs = kwargs
        self.deadline = deadline
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.result = None
        self.error = None
        self.queue_ms = None
        self.exec_ms = None


class SessionScheduler:
    """Thread-pool executor for queries against one shared connection."""

    def __init__(self, connection, config=None):
        self.connection = connection
        self.config = config or SchedulerConfig()
        self.registry = MetricsRegistry()
        self._queue = queue.Queue(maxsize=self.config.queue_depth)
        self._stats_lock = threading.Lock()
        self._accepting = True
        self._stopped = threading.Event()
        self._in_flight = 0
        self._workers = []
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            self._workers.append(worker)
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, text, **kwargs):
        """Enqueue a query; returns a :class:`_Request` handle.

        Raises :class:`ServerOverloaded` when the admission queue is full
        and :class:`SessionClosed` after :meth:`shutdown`.
        """
        if not self._accepting:
            raise SessionClosed("server is shutting down")
        timeout = kwargs.pop("timeout", None)
        if timeout is None:
            timeout = self.config.default_timeout
        workers = kwargs.get("workers")
        if workers is not None:
            workers = max(1, int(workers))
            if self.config.max_dop is not None:
                workers = min(workers, int(self.config.max_dop))
            kwargs["workers"] = workers
        elif self.config.max_dop is not None:
            kwargs["workers"] = int(self.config.max_dop)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        request = _Request(text, kwargs, deadline)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._count("rejected")
            raise ServerOverloaded(
                f"admission queue full ({self.config.queue_depth} pending); "
                "retry later"
            ) from None
        self._count("accepted")
        self._gauge_depth()
        return request

    def execute(self, text, **kwargs):
        """Submit and wait; returns the :class:`repro.api.Result` or
        raises the query's error (including :class:`QueryTimeout`)."""
        request = self.submit(text, **kwargs)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self):
        session = self.connection.session()
        while True:
            try:
                request = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopped.is_set():
                    return
                continue
            with self._stats_lock:
                self._in_flight += 1
            try:
                self._run_request(session, request)
            finally:
                with self._stats_lock:
                    self._in_flight -= 1
                self._queue.task_done()
                self._gauge_depth()

    def _run_request(self, session, request):
        started = time.monotonic()
        request.queue_ms = (started - request.enqueued_at) * 1000.0
        remaining = None
        if request.deadline is not None:
            remaining = request.deadline - started
            if remaining <= 0:
                request.error = QueryTimeout(
                    "query timed out while queued "
                    f"(waited {request.queue_ms:.1f}ms)"
                )
                self._observe_outcome(request, started, "timeout")
                request.done.set()
                return
        try:
            request.result = session.query(
                request.text, timeout=remaining, **request.kwargs
            )
            outcome = "completed"
        except QueryTimeout as exc:
            request.error = exc
            outcome = "timeout"
        except ReproError as exc:
            request.error = exc
            outcome = "failed"
        except Exception as exc:  # defensive: never kill a worker
            log.exception("worker crashed on %r", request.text)
            request.error = ReproError(f"internal error: {exc}")
            outcome = "failed"
        self._observe_outcome(request, started, outcome)
        request.done.set()

    def _observe_outcome(self, request, started, outcome):
        finished = time.monotonic()
        request.exec_ms = (finished - started) * 1000.0
        total_ms = (finished - request.enqueued_at) * 1000.0
        with self._stats_lock:
            self.registry.counter("server.queries", outcome=outcome).inc()
            self.registry.histogram("server.queue_wait_ms").observe(
                request.queue_ms
            )
            self.registry.histogram("server.execution_ms").observe(
                request.exec_ms
            )
            self.registry.histogram("server.latency_ms").observe(total_ms)

    def _count(self, name):
        with self._stats_lock:
            self.registry.counter("server.admission", outcome=name).inc()

    def _gauge_depth(self):
        with self._stats_lock:
            self.registry.gauge("server.queue_depth").set(
                self._queue.qsize()
            )

    def publish_plan_cache(self, stats):
        """Mirror the connection's prepared-plan cache counters into the
        metrics registry as gauges (the cache lives on the connection,
        outside the registry, so the Prometheus exporter refreshes these
        just before rendering)."""
        with self._stats_lock:
            for key, value in stats.items():
                self.registry.gauge(f"server.plan_cache_{key}").set(value)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self):
        """JSON-ready snapshot: registry dump plus live depth/in-flight."""
        with self._stats_lock:
            snapshot = self.registry.to_dict()
            in_flight = self._in_flight
        snapshot["live"] = {
            "queue_depth": self._queue.qsize(),
            "in_flight": in_flight,
            "workers": self.config.workers,
            "queue_capacity": self.config.queue_depth,
            "accepting": self._accepting,
            "max_dop": self.config.max_dop,
        }
        return snapshot

    def latency_summary(self):
        """p50/p95/p99/mean of total latency (ms), from the registry."""
        with self._stats_lock:
            histogram = self.registry.histogram("server.latency_ms")
            return histogram.summary()

    def shutdown(self, drain=True, timeout=30.0):
        """Stop the scheduler.

        With ``drain=True`` (graceful), admission closes first, every
        already-accepted query runs to completion, then workers exit.
        With ``drain=False``, queued-but-unstarted requests are failed
        with :class:`SessionClosed`.
        """
        self._accepting = False
        if not drain:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                request.error = SessionClosed("server shut down")
                request.done.set()
                self._queue.task_done()
        self._queue.join()
        self._stopped.set()
        for worker in self._workers:
            worker.join(timeout=timeout)
