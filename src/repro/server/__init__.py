"""repro.server — the concurrent query server and its workload tools.

The paper measures one query at a time on a cold or hot store; the
ROADMAP's north star is sustained concurrent traffic, where the shared
buffer pool and tail latency become the measured quantities.  This
package provides:

* :mod:`repro.server.scheduler` — a thread-pool **session scheduler**
  with admission control: a bounded queue in front of N worker threads,
  explicit overload rejection (HTTP 429), per-query deadlines with
  cooperative cancellation, and latency accounting (queue wait vs.
  execution) into a :class:`~repro.observe.metrics.MetricsRegistry`.
* :mod:`repro.server.http` — ``repro serve``: a stdlib HTTP front-end
  exposing the session API (`POST /v1/query`, session endpoints, JSON
  stats, Prometheus ``/metrics``) over one shared
  :class:`~repro.api.Connection`.
* :mod:`repro.server.replay` — ``repro replay``: a workload generator
  sampling the Barton queries from a Zipf-skewed frequency distribution
  (real SPARQL workloads are frequency-skewed mixes of a few pattern
  shapes — Arias et al.), driving N concurrent clients and reporting
  p50/p95/p99 latency + throughput, recordable into the perf ledger.

Everything here is wall-clock territory (latencies, timeouts, throughput)
— the *simulated* costs of individual queries flow through untouched and
stay byte-identical to direct :meth:`repro.api.Session.query` execution
when replayed serially.
"""

from repro.server.http import QueryServer, serve
from repro.server.scheduler import SchedulerConfig, SessionScheduler
from repro.server.replay import (
    ReplayConfig,
    ReplayReport,
    WorkloadMix,
    record_from_replay,
    run_replay,
)

__all__ = [
    "QueryServer",
    "serve",
    "SchedulerConfig",
    "SessionScheduler",
    "ReplayConfig",
    "ReplayReport",
    "WorkloadMix",
    "record_from_replay",
    "run_replay",
]
