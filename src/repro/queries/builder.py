"""Build logical plans for the benchmark queries against a store catalog.

Two builders share one public entry point:

* :class:`TripleStorePlans` — plans over the single ``triples`` table,
  following the appendix SQL of the paper verbatim (including the
  ``properties`` filter join for the non-star q2/q3/q4/q6).
* :class:`VerticalPlans` — the "Perl script" of the paper's appendix: the
  same queries expanded over one table per property, with UNION branches
  tagging rows with their property oid.  Full-scale variants iterate all
  properties; q8 always does (its property is unbound).

Every plan ends in a Project onto the query's canonical output column
names, so results are comparable across schemes and engines.
"""

from repro.errors import PlanError
from repro.plan import (
    Comparison,
    Extend,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)
from repro.queries.definitions import CONSTANTS, parse_query_name


def build_query(catalog, name, scope=None, lint=None):
    """Build the logical plan for benchmark query *name* over *catalog*.

    *scope* overrides the property scope ("interesting", "all", or an
    explicit property-name list) — used by the Figure 6 sweep, which varies
    the number of properties considered by q2/q3/q4/q6.

    Every built plan runs through the static plan linter
    (:mod:`repro.analysis`); *lint* overrides the session lint mode for
    this call (``"off"`` / ``"warn"`` / ``"strict"``).
    """
    base, full_scale = parse_query_name(name)
    if scope is None:
        scope = "all" if full_scale else "interesting"
    if catalog.is_triple_store():
        builder = TripleStorePlans(catalog)
    elif catalog.is_vertical():
        builder = VerticalPlans(catalog)
    elif catalog.scheme == "property_table":
        from repro.queries.ptable_plans import PropertyTablePlans

        builder = PropertyTablePlans(catalog)
    else:
        raise PlanError(f"unknown storage scheme {catalog.scheme!r}")
    plan = getattr(builder, base)(scope)

    from repro.analysis import plan_lint

    plan_lint.check_plan(plan, where=f"query:{name}", mode=lint)
    return plan


def build_physical_query(catalog, engine, name, scope=None, lint=None):
    """Build query *name* and lower it through *engine*'s operator
    registry; returns the :class:`~repro.exec.physical.PhysicalPlan` the
    unified execution layer will run (cached by the engine's runtime, so
    a later ``engine.run`` on the same logical plan reuses it)."""
    return engine.lower(build_query(catalog, name, scope=scope, lint=lint))


class _Plans:
    """Shared helpers for both builders."""

    def __init__(self, catalog):
        self.catalog = catalog

    def const(self, key):
        """Oid of a named query constant (None when absent from the data)."""
        return self.catalog.encode(CONSTANTS[key])

    def eq(self, column, key):
        return Comparison(column, "=", self.const(key))

    def ne(self, column, key):
        return Comparison(column, "!=", self.const(key))


class TripleStorePlans(_Plans):
    """Appendix SQL, clause by clause, over the triples table."""

    def scan(self, alias):
        return Scan(
            self.catalog.triples_table, ["subj", "prop", "obj"], alias=alias
        )

    def properties_filter(self, child, prop_column, scope):
        """Join against the 28-property table (the Longwell restriction)."""
        if scope == "all":
            return child
        p = Scan(self.catalog.properties_table, ["prop"], alias="P")
        return Join(child, p, on=[(prop_column, "P.prop")])

    def q1(self, scope):
        a = Select(self.scan("A"), [self.eq("A.prop", "type")])
        g = GroupBy(a, keys=["A.obj"], count_column="count")
        return Project(g, [("obj", "A.obj"), ("count", "count")])

    def _type_text_join_b(self):
        """``A.subj = B.subj AND A.prop = <type> AND A.obj = <Text>``."""
        a = Select(
            self.scan("A"),
            [self.eq("A.prop", "type"), self.eq("A.obj", "Text")],
        )
        return Join(a, self.scan("B"), on=[("A.subj", "B.subj")])

    def q2(self, scope):
        joined = self.properties_filter(
            self._type_text_join_b(), "B.prop", scope
        )
        g = GroupBy(joined, keys=["B.prop"], count_column="count")
        return Project(g, [("prop", "B.prop"), ("count", "count")])

    def q3(self, scope):
        joined = self.properties_filter(
            self._type_text_join_b(), "B.prop", scope
        )
        g = GroupBy(joined, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q4(self, scope):
        ab = self._type_text_join_b()
        c = Select(
            self.scan("C"),
            [self.eq("C.prop", "language"), self.eq("C.obj", "french")],
        )
        abc = Join(ab, c, on=[("B.subj", "C.subj")])
        joined = self.properties_filter(abc, "B.prop", scope)
        g = GroupBy(joined, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q5(self, scope):
        a = Select(
            self.scan("A"),
            [self.eq("A.prop", "origin"), self.eq("A.obj", "DLC")],
        )
        b = Select(self.scan("B"), [self.eq("B.prop", "records")])
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = Select(
            self.scan("C"),
            [self.eq("C.prop", "type"), self.ne("C.obj", "Text")],
        )
        abc = Join(ab, c, on=[("B.obj", "C.subj")])
        return Project(abc, [("subj", "B.subj"), ("obj", "C.obj")])

    def _q6_union(self):
        b = Select(
            self.scan("B"),
            [self.eq("B.prop", "type"), self.eq("B.obj", "Text")],
        )
        branch1 = Project(b, [("u.subj", "B.subj")])
        c = Select(self.scan("C"), [self.eq("C.prop", "records")])
        d = Select(
            self.scan("D"),
            [self.eq("D.prop", "type"), self.eq("D.obj", "Text")],
        )
        cd = Join(c, d, on=[("C.obj", "D.subj")])
        branch2 = Project(cd, [("u.subj", "C.subj")])
        return Union([branch1, branch2], distinct=True)

    def q6(self, scope):
        joined = Join(
            self._q6_union(), self.scan("A"), on=[("u.subj", "A.subj")]
        )
        joined = self.properties_filter(joined, "A.prop", scope)
        g = GroupBy(joined, keys=["A.prop"], count_column="count")
        return Project(g, [("prop", "A.prop"), ("count", "count")])

    def q7(self, scope):
        a = Select(
            self.scan("A"),
            [self.eq("A.prop", "Point"), self.eq("A.obj", "end")],
        )
        b = Select(self.scan("B"), [self.eq("B.prop", "Encoding")])
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = Select(self.scan("C"), [self.eq("C.prop", "type")])
        abc = Join(ab, c, on=[("A.subj", "C.subj")])
        return Project(
            abc,
            [
                ("subj", "A.subj"),
                ("obj_encoding", "B.obj"),
                ("obj_type", "C.obj"),
            ],
        )

    def q8(self, scope):
        a = Select(self.scan("A"), [self.eq("A.subj", "conferences")])
        b = Select(self.scan("B"), [self.ne("B.subj", "conferences")])
        ab = Join(a, b, on=[("A.obj", "B.obj")])
        return Project(ab, [("subj", "B.subj")])


class VerticalPlans(_Plans):
    """The queries expanded over per-property tables.

    A bound property becomes a scan of its table; an unbound property
    becomes a UNION over the in-scope property tables, each branch tagged
    with its property oid via Extend — the "sizable SQL clause" of the
    paper's Section 4.2.
    """

    def vp_scan(self, prop_key_or_name, alias):
        name = CONSTANTS.get(prop_key_or_name, prop_key_or_name)
        table = self.catalog.property_table(name)
        return Scan(table, ["subj", "obj"], alias=alias)

    def triples_union(self, alias, scope, need_prop=True, need_obj=True,
                      predicates=None):
        """A triples-shaped relation reassembled from the property tables.

        Emits columns ``{alias}.subj`` (always), ``{alias}.prop`` and
        ``{alias}.obj`` on request; *predicates* is an optional callable
        producing per-branch predicates from the branch alias.
        """
        branches = []
        for i, prop in enumerate(self.catalog.properties_for(scope)):
            branch_alias = f"{alias}{i}"
            node = self.vp_scan(prop, branch_alias)
            if predicates is not None:
                node = Select(node, predicates(branch_alias))
            mapping = [(f"{alias}.subj", f"{branch_alias}.subj")]
            if need_prop:
                node = Extend(
                    node, f"{branch_alias}.prop", self.catalog.encode(prop)
                )
                mapping.append((f"{alias}.prop", f"{branch_alias}.prop"))
            if need_obj:
                mapping.append((f"{alias}.obj", f"{branch_alias}.obj"))
            branches.append(Project(node, mapping))
        return Union(branches, distinct=False)

    def q1(self, scope):
        a = self.vp_scan("type", "A")
        g = GroupBy(a, keys=["A.obj"], count_column="count")
        return Project(g, [("obj", "A.obj"), ("count", "count")])

    def _text_subjects(self, alias="A"):
        return Select(
            self.vp_scan("type", alias), [self.eq(f"{alias}.obj", "Text")]
        )

    def q2(self, scope):
        b = self.triples_union("B", scope, need_prop=True, need_obj=False)
        joined = Join(self._text_subjects(), b, on=[("A.subj", "B.subj")])
        g = GroupBy(joined, keys=["B.prop"], count_column="count")
        return Project(g, [("prop", "B.prop"), ("count", "count")])

    def q3(self, scope):
        b = self.triples_union("B", scope, need_prop=True, need_obj=True)
        joined = Join(self._text_subjects(), b, on=[("A.subj", "B.subj")])
        g = GroupBy(joined, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q4(self, scope):
        b = self.triples_union("B", scope, need_prop=True, need_obj=True)
        ab = Join(self._text_subjects(), b, on=[("A.subj", "B.subj")])
        c = Select(
            self.vp_scan("language", "C"), [self.eq("C.obj", "french")]
        )
        abc = Join(ab, c, on=[("B.subj", "C.subj")])
        g = GroupBy(abc, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q5(self, scope):
        a = Select(self.vp_scan("origin", "A"), [self.eq("A.obj", "DLC")])
        b = self.vp_scan("records", "B")
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = Select(self.vp_scan("type", "C"), [self.ne("C.obj", "Text")])
        abc = Join(ab, c, on=[("B.obj", "C.subj")])
        return Project(abc, [("subj", "B.subj"), ("obj", "C.obj")])

    def _q6_union(self):
        branch1 = Project(self._text_subjects("B"), [("u.subj", "B.subj")])
        c = self.vp_scan("records", "C")
        d = self._text_subjects("D")
        cd = Join(c, d, on=[("C.obj", "D.subj")])
        branch2 = Project(cd, [("u.subj", "C.subj")])
        return Union([branch1, branch2], distinct=True)

    def q6(self, scope):
        a = self.triples_union("A", scope, need_prop=True, need_obj=False)
        joined = Join(self._q6_union(), a, on=[("u.subj", "A.subj")])
        g = GroupBy(joined, keys=["A.prop"], count_column="count")
        return Project(g, [("prop", "A.prop"), ("count", "count")])

    def q7(self, scope):
        a = Select(self.vp_scan("Point", "A"), [self.eq("A.obj", "end")])
        b = self.vp_scan("Encoding", "B")
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = self.vp_scan("type", "C")
        abc = Join(ab, c, on=[("A.subj", "C.subj")])
        return Project(
            abc,
            [
                ("subj", "A.subj"),
                ("obj_encoding", "B.obj"),
                ("obj_type", "C.obj"),
            ],
        )

    def q8(self, scope):
        """Two-phase plan of Section 4.2: collect <conferences> objects into
        a temporary relation t, then join t back against every property
        table after filtering out <conferences> subjects."""
        t = self.triples_union(
            "t", "all", need_prop=False, need_obj=True,
            predicates=lambda alias: [self.eq(f"{alias}.subj", "conferences")],
        )
        t = Project(t, [("t.obj", "t.obj")])
        b = self.triples_union(
            "B", "all", need_prop=False, need_obj=True,
            predicates=lambda alias: [
                self.ne(f"{alias}.subj", "conferences")
            ],
        )
        joined = Join(t, b, on=[("t.obj", "B.obj")])
        return Project(joined, [("subj", "B.subj")])
