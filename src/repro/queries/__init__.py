"""The benchmark queries: q1-q7 from Abadi et al., q8 and the full-scale
``*`` variants added by this paper.

Queries are built as engine-neutral logical plans against a
:class:`~repro.storage.catalog.StoreCatalog`, so the same query definition
runs on the triple-store and the vertically-partitioned scheme, on any
engine.

Naming convention: ``"q1"`` .. ``"q8"`` are the 28-property-restricted
queries; ``"q2*"``, ``"q3*"``, ``"q4*"``, ``"q6*"`` are the full-scale
versions considering all properties (q8 always considers all properties —
its property is unbound).
"""

from repro.queries.definitions import (
    ALL_QUERY_NAMES,
    BASE_QUERY_NAMES,
    QUERIES,
    QueryDefinition,
    coverage_table,
)
from repro.queries.builder import build_physical_query, build_query
from repro.queries.reference import reference_answer

__all__ = [
    "ALL_QUERY_NAMES",
    "BASE_QUERY_NAMES",
    "QUERIES",
    "QueryDefinition",
    "coverage_table",
    "build_query",
    "build_physical_query",
    "reference_answer",
]
