"""Reference (oracle) implementations of the benchmark queries.

Each query is evaluated with naive nested loops over an
:class:`~repro.model.graph.RDFGraph`, with SQL bag semantics.  Integration
tests require every engine x scheme combination to return exactly these
answers (as decoded, sorted tuples).
"""

from collections import Counter

from repro.queries.definitions import CONSTANTS, parse_query_name


def reference_answer(graph, name, interesting_properties):
    """Sorted result tuples (strings/ints) for benchmark query *name*."""
    base, full_scale = parse_query_name(name)
    scope = None if full_scale else set(interesting_properties)
    evaluator = _EVALUATORS[base]
    return sorted(evaluator(graph, scope))


def _in_scope(prop, scope):
    return scope is None or prop in scope


def _q1(graph, scope):
    counts = Counter(t.o for t in graph.match(p=CONSTANTS["type"]))
    return [(obj, n) for obj, n in counts.items()]


def _text_subjects(graph):
    return {
        t.s
        for t in graph.match(p=CONSTANTS["type"], o=CONSTANTS["Text"])
    }


def _q2(graph, scope):
    subjects = _text_subjects(graph)
    counts = Counter(
        t.p
        for t in graph
        if t.s in subjects and _in_scope(t.p, scope)
    )
    return [(p, n) for p, n in counts.items()]


def _q3(graph, scope):
    subjects = _text_subjects(graph)
    counts = Counter(
        (t.p, t.o)
        for t in graph
        if t.s in subjects and _in_scope(t.p, scope)
    )
    return [(p, o, n) for (p, o), n in counts.items() if n > 1]


def _q4(graph, scope):
    text = _text_subjects(graph)
    french = {
        t.s
        for t in graph.match(p=CONSTANTS["language"], o=CONSTANTS["french"])
    }
    subjects = text & french
    counts = Counter(
        (t.p, t.o)
        for t in graph
        if t.s in subjects and _in_scope(t.p, scope)
    )
    return [(p, o, n) for (p, o), n in counts.items() if n > 1]


def _q5(graph, scope):
    rows = []
    for a in graph.match(p=CONSTANTS["origin"], o=CONSTANTS["DLC"]):
        for b in graph.match(s=a.s, p=CONSTANTS["records"]):
            for c in graph.match(s=b.o, p=CONSTANTS["type"]):
                if c.o != CONSTANTS["Text"]:
                    rows.append((b.s, c.o))
    return rows


def _q6(graph, scope):
    union = _text_subjects(graph)
    for c in graph.match(p=CONSTANTS["records"]):
        for d in graph.match(s=c.o, p=CONSTANTS["type"]):
            if d.o == CONSTANTS["Text"]:
                union.add(c.s)
    counts = Counter(
        t.p
        for t in graph
        if t.s in union and _in_scope(t.p, scope)
    )
    return [(p, n) for p, n in counts.items()]


def _q7(graph, scope):
    rows = []
    for a in graph.match(p=CONSTANTS["Point"], o=CONSTANTS["end"]):
        for b in graph.match(s=a.s, p=CONSTANTS["Encoding"]):
            for c in graph.match(s=a.s, p=CONSTANTS["type"]):
                rows.append((a.s, b.o, c.o))
    return rows


def _q8(graph, scope):
    rows = []
    conferences = CONSTANTS["conferences"]
    for a in graph.match(s=conferences):
        for b in graph.match(o=a.o):
            if b.s != conferences:
                rows.append((b.s,))
    return rows


_EVALUATORS = {
    "q1": _q1,
    "q2": _q2,
    "q3": _q3,
    "q4": _q4,
    "q5": _q5,
    "q6": _q6,
    "q7": _q7,
    "q8": _q8,
}
