"""EXTENSION — benchmark query plans for the property-table scheme.

Every triple pattern against a property-table store reads *two* places:
the wide table's column (single-valued instances) and the leftover triples
table (multi-valued spills and non-clustered properties).  A bound property
is therefore a 2-branch UNION; an unbound property unions every clustered
column with the whole leftover table — the "proliferation of union clauses
and joins ... complex union clauses" that the VLDB 2007 paper levelled at
property tables and that this paper's Section 4.2 shows applies to vertical
partitioning as well.
"""

from repro.plan import (
    Comparison,
    Extend,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)
from repro.queries.builder import _Plans
from repro.storage.property_table import NULL_OID


class PropertyTablePlans(_Plans):
    """q1-q8 over the wide table + leftover triples layout."""

    # ------------------------------------------------------------------
    # pattern relations
    # ------------------------------------------------------------------

    def bound(self, prop_key, alias, obj_eq=None, obj_ne=None,
              need_obj=True):
        """Relation of the triples carrying one property.

        Emits ``{alias}.subj`` (and ``{alias}.obj`` when *need_obj*);
        *obj_eq* / *obj_ne* are constant keys applied to the object.
        """
        from repro.queries.definitions import CONSTANTS

        prop_name = CONSTANTS.get(prop_key, prop_key)
        mapping_names = [f"{alias}.subj"]
        if need_obj:
            mapping_names.append(f"{alias}.obj")

        branches = []
        column = self.catalog.clustered_property_columns.get(prop_name)
        if column is not None:
            wide_alias = f"{alias}w"
            node = Scan(
                self.catalog.property_table_name,
                ["subj", column],
                alias=wide_alias,
            )
            predicates = [
                Comparison(f"{wide_alias}.{column}", "!=", NULL_OID)
            ]
            predicates += self._object_predicates(
                f"{wide_alias}.{column}", obj_eq, obj_ne
            )
            mapping = [(f"{alias}.subj", f"{wide_alias}.subj")]
            if need_obj:
                mapping.append((f"{alias}.obj", f"{wide_alias}.{column}"))
            branches.append(Project(Select(node, predicates), mapping))

        leftover_alias = f"{alias}l"
        node = Scan(
            self.catalog.triples_table,
            ["subj", "prop", "obj"],
            alias=leftover_alias,
        )
        predicates = [
            Comparison(
                f"{leftover_alias}.prop", "=", self.catalog.encode(prop_name)
            )
        ]
        predicates += self._object_predicates(
            f"{leftover_alias}.obj", obj_eq, obj_ne
        )
        mapping = [(f"{alias}.subj", f"{leftover_alias}.subj")]
        if need_obj:
            mapping.append((f"{alias}.obj", f"{leftover_alias}.obj"))
        branches.append(Project(Select(node, predicates), mapping))

        if len(branches) == 1:
            return branches[0]
        return Union(branches, distinct=False)

    def _object_predicates(self, column, obj_eq, obj_ne):
        predicates = []
        if obj_eq is not None:
            predicates.append(Comparison(column, "=", self.const(obj_eq)))
        if obj_ne is not None:
            predicates.append(Comparison(column, "!=", self.const(obj_ne)))
        return predicates

    def unbound(self, alias, need_prop=True, need_obj=True,
                subject_eq=None, subject_ne=None):
        """Triples-shaped relation over *every* property.

        One branch per clustered wide-table column (tagged with its
        property oid) plus the whole leftover table.
        """
        mapping_spec = ["subj"]
        if need_prop:
            mapping_spec.append("prop")
        if need_obj:
            mapping_spec.append("obj")

        branches = []
        for i, (prop_name, column) in enumerate(
            sorted(self.catalog.clustered_property_columns.items())
        ):
            wide_alias = f"{alias}w{i}"
            node = Scan(
                self.catalog.property_table_name,
                ["subj", column],
                alias=wide_alias,
            )
            predicates = [
                Comparison(f"{wide_alias}.{column}", "!=", NULL_OID)
            ]
            predicates += self._subject_predicates(
                f"{wide_alias}.subj", subject_eq, subject_ne
            )
            node = Select(node, predicates)
            source = {
                "subj": f"{wide_alias}.subj",
                "obj": f"{wide_alias}.{column}",
            }
            if need_prop:
                node = Extend(
                    node,
                    f"{wide_alias}.prop",
                    self.catalog.encode(prop_name),
                )
                source["prop"] = f"{wide_alias}.prop"
            branches.append(
                Project(
                    node,
                    [(f"{alias}.{c}", source[c]) for c in mapping_spec],
                )
            )

        leftover_alias = f"{alias}l"
        node = Scan(
            self.catalog.triples_table,
            ["subj", "prop", "obj"],
            alias=leftover_alias,
        )
        predicates = self._subject_predicates(
            f"{leftover_alias}.subj", subject_eq, subject_ne
        )
        if predicates:
            node = Select(node, predicates)
        branches.append(
            Project(
                node,
                [
                    (f"{alias}.{c}", f"{leftover_alias}.{c}")
                    for c in mapping_spec
                ],
            )
        )
        return Union(branches, distinct=False)

    def _subject_predicates(self, column, subject_eq, subject_ne):
        predicates = []
        if subject_eq is not None:
            predicates.append(
                Comparison(column, "=", self.const(subject_eq))
            )
        if subject_ne is not None:
            predicates.append(
                Comparison(column, "!=", self.const(subject_ne))
            )
        return predicates

    def properties_filter(self, child, prop_column, scope):
        if scope == "all":
            return child
        p = Scan(self.catalog.properties_table, ["prop"], alias="P")
        return Join(child, p, on=[(prop_column, "P.prop")])

    # ------------------------------------------------------------------
    # the queries
    # ------------------------------------------------------------------

    def q1(self, scope):
        a = self.bound("type", "A")
        g = GroupBy(a, keys=["A.obj"], count_column="count")
        return Project(g, [("obj", "A.obj"), ("count", "count")])

    def _text_join_b(self, scope, need_obj):
        a = self.bound("type", "A", obj_eq="Text", need_obj=False)
        b = self.unbound("B", need_prop=True, need_obj=need_obj)
        return Join(a, b, on=[("A.subj", "B.subj")])

    def q2(self, scope):
        joined = self.properties_filter(
            self._text_join_b(scope, need_obj=False), "B.prop", scope
        )
        g = GroupBy(joined, keys=["B.prop"], count_column="count")
        return Project(g, [("prop", "B.prop"), ("count", "count")])

    def q3(self, scope):
        joined = self.properties_filter(
            self._text_join_b(scope, need_obj=True), "B.prop", scope
        )
        g = GroupBy(joined, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q4(self, scope):
        ab = self._text_join_b(scope, need_obj=True)
        c = self.bound("language", "C", obj_eq="french", need_obj=False)
        abc = Join(ab, c, on=[("B.subj", "C.subj")])
        joined = self.properties_filter(abc, "B.prop", scope)
        g = GroupBy(joined, keys=["B.prop", "B.obj"], count_column="count")
        h = Having(g, Comparison("count", ">", 1))
        return Project(
            h, [("prop", "B.prop"), ("obj", "B.obj"), ("count", "count")]
        )

    def q5(self, scope):
        a = self.bound("origin", "A", obj_eq="DLC", need_obj=False)
        b = self.bound("records", "B")
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = self.bound("type", "C", obj_ne="Text")
        abc = Join(ab, c, on=[("B.obj", "C.subj")])
        return Project(abc, [("subj", "B.subj"), ("obj", "C.obj")])

    def _q6_union(self):
        b = self.bound("type", "B", obj_eq="Text", need_obj=False)
        branch1 = Project(b, [("u.subj", "B.subj")])
        c = self.bound("records", "C")
        d = self.bound("type", "D", obj_eq="Text", need_obj=False)
        cd = Join(c, d, on=[("C.obj", "D.subj")])
        branch2 = Project(cd, [("u.subj", "C.subj")])
        return Union([branch1, branch2], distinct=True)

    def q6(self, scope):
        a = self.unbound("A", need_prop=True, need_obj=False)
        joined = Join(self._q6_union(), a, on=[("u.subj", "A.subj")])
        joined = self.properties_filter(joined, "A.prop", scope)
        g = GroupBy(joined, keys=["A.prop"], count_column="count")
        return Project(g, [("prop", "A.prop"), ("count", "count")])

    def q7(self, scope):
        a = self.bound("Point", "A", obj_eq="end", need_obj=False)
        b = self.bound("Encoding", "B")
        ab = Join(a, b, on=[("A.subj", "B.subj")])
        c = self.bound("type", "C")
        abc = Join(ab, c, on=[("A.subj", "C.subj")])
        return Project(
            abc,
            [
                ("subj", "A.subj"),
                ("obj_encoding", "B.obj"),
                ("obj_type", "C.obj"),
            ],
        )

    def q8(self, scope):
        t = self.unbound(
            "t", need_prop=False, need_obj=True, subject_eq="conferences"
        )
        t = Project(t, [("t.obj", "t.obj")])
        b = self.unbound(
            "B", need_prop=False, need_obj=True, subject_ne="conferences"
        )
        joined = Join(t, b, on=[("t.obj", "B.obj")])
        return Project(joined, [("subj", "B.subj")])
