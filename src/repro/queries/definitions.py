"""Benchmark query metadata: descriptions and query-space coverage (Table 2).

The coverage entries reproduce the paper's Table 2: which of the simple
triple patterns p1-p8 and which join patterns (A: subject-subject,
B: object-object, C: object-subject) each query exercises.
"""

from dataclasses import dataclass

from repro.data.barton import (
    CONFERENCES,
    DLC,
    ENCODING,
    END,
    FRENCH,
    LANGUAGE,
    ORIGIN,
    POINT,
    RECORDS,
    TEXT,
    TYPE,
)

#: Query constants, named after the paper's appendix SQL.
CONSTANTS = {
    "type": TYPE,
    "Text": TEXT,
    "language": LANGUAGE,
    "french": FRENCH,
    "origin": ORIGIN,
    "DLC": DLC,
    "records": RECORDS,
    "Point": POINT,
    "end": END,
    "Encoding": ENCODING,
    "conferences": CONFERENCES,
}


@dataclass(frozen=True)
class QueryDefinition:
    """One benchmark query, as the paper's Table 2 characterizes it."""

    name: str
    description: str
    triple_patterns: tuple  # p1..p8 coverage
    join_patterns: tuple    # A/B/C coverage
    has_star_variant: bool  # restricted to the 28 properties by default?
    output_columns: tuple


QUERIES = {
    "q1": QueryDefinition(
        name="q1",
        description="Histogram of <type> objects: properties of all "
                    "resources, with counts.",
        triple_patterns=("p7",),
        join_patterns=(),
        has_star_variant=False,
        output_columns=("obj", "count"),
    ),
    "q2": QueryDefinition(
        name="q2",
        description="For resources of type Text, count their other "
                    "properties (filtered to the 28 interesting ones).",
        triple_patterns=("p2", "p8"),
        join_patterns=("A",),
        has_star_variant=True,
        output_columns=("prop", "count"),
    ),
    "q3": QueryDefinition(
        name="q3",
        description="Like q2 but grouped by (property, object), keeping "
                    "pairs occurring more than once.",
        triple_patterns=("p2", "p8"),
        join_patterns=("A",),
        has_star_variant=True,
        output_columns=("prop", "obj", "count"),
    ),
    "q4": QueryDefinition(
        name="q4",
        description="q3 restricted to French-language Text resources.",
        triple_patterns=("p2", "p8"),
        join_patterns=("A",),
        has_star_variant=True,
        output_columns=("prop", "obj", "count"),
    ),
    "q5": QueryDefinition(
        name="q5",
        description="Inference step: subjects originating from DLC whose "
                    "records point at non-Text resources.",
        triple_patterns=("p2", "p7"),
        join_patterns=("A", "C"),
        has_star_variant=False,
        output_columns=("subj", "obj"),
    ),
    "q6": QueryDefinition(
        name="q6",
        description="Property histogram over resources that are Text or "
                    "record a Text resource (union + joins).",
        triple_patterns=("p2", "p7", "p8"),
        join_patterns=("A", "C"),
        has_star_variant=True,
        output_columns=("prop", "count"),
    ),
    "q7": QueryDefinition(
        name="q7",
        description="Triple-selection: end-points with their encodings and "
                    "types.",
        triple_patterns=("p2", "p7"),
        join_patterns=("A",),
        has_star_variant=False,
        output_columns=("subj", "obj_encoding", "obj_type"),
    ),
    "q8": QueryDefinition(
        name="q8",
        description="This paper's extension: subjects sharing any object "
                    "with <conferences> (object-object join, pattern B).",
        triple_patterns=("p6", "p8"),
        join_patterns=("B",),
        has_star_variant=False,
        output_columns=("subj",),
    ),
}

#: The 7 original queries plus q8, in benchmark order.
BASE_QUERY_NAMES = tuple(f"q{i}" for i in range(1, 9))

#: Benchmark order including the full-scale variants — the 12 queries of
#: Tables 6 and 7: q1 q2 q2* q3 q3* q4 q4* q5 q6 q6* q7 q8.
ALL_QUERY_NAMES = (
    "q1", "q2", "q2*", "q3", "q3*", "q4", "q4*", "q5", "q6", "q6*", "q7", "q8",
)


def parse_query_name(name):
    """Split a benchmark query name into (base, full_scale)."""
    if name.endswith("*"):
        base = name[:-1]
        if base not in QUERIES or not QUERIES[base].has_star_variant:
            raise KeyError(f"query {name!r} has no full-scale variant")
        return base, True
    if name not in QUERIES:
        raise KeyError(f"unknown query {name!r}")
    return name, False


def coverage_table():
    """The paper's Table 2: query -> (triple patterns, join patterns)."""
    return {
        name: (list(q.triple_patterns), list(q.join_patterns))
        for name, q in QUERIES.items()
    }
