"""repro.api — the stable public query interface.

One documented entry point wraps everything the library grew organically
(:class:`~repro.core.store.RDFStore` methods, :func:`repro.exec.run_plan`,
the SQL/SPARQL front-end helpers)::

    import repro.api as api

    conn = api.connect(triples=my_triples, engine="column", scheme="vertical")
    with conn.session() as session:
        result = session.query("SELECT ?s WHERE { ?s <type> <Text> }")
        for row in result:
            ...
        result.cost.real_seconds   # simulated cost of this query

The object model:

* :func:`connect` builds (or wraps) a store deployment and returns a
  :class:`Connection` — one engine instance, one storage scheme, one
  buffer pool.
* :meth:`Connection.session` opens a :class:`Session`: a serialized
  query stream with its own defaults (timeout, lint mode).  Sessions of
  one connection **share the engine and its buffer pool** — exactly the
  contention the query server (:mod:`repro.server`) measures — so query
  execution is serialized through the connection's execution lock.
* :meth:`Session.query` accepts SQL, SPARQL, or a benchmark query name
  and returns a :class:`Result` carrying decoded rows, the simulated
  :class:`~repro.engine.clock.QueryTiming`, and (on request) the full
  EXPLAIN ANALYZE profile.

Timeouts are cooperative: ``Session.query(..., timeout=0.5)`` arms a
timer that sets a :class:`~repro.exec.cancel.CancellationToken`; the
unified runtime polls it at operator boundaries and the query unwinds
with :class:`~repro.errors.QueryTimeout`, leaving the shared buffer pool
consistent.

The legacy surfaces remain as thin deprecation shims:
``RDFStore.sql`` / ``RDFStore.sparql`` / ``RDFStore.solve`` delegate to
an internal :class:`Connection` and stay result- and cost-identical.
"""

import threading
from collections import OrderedDict

from repro.core.store import RDFStore
from repro.errors import (
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ServerOverloaded,
    SessionClosed,
)
from repro.exec.cancel import CancellationToken
from repro.queries import ALL_QUERY_NAMES, build_query

__all__ = [
    "connect",
    "Connection",
    "Session",
    "Result",
    "classify_query",
    "QueryTimeout",
    "QueryCancelled",
    "SessionClosed",
    "ServerOverloaded",
]

#: Upper bound on cached logical plans per connection (prepared-statement
#: cache; LRU eviction).  Plans are immutable, so sharing one plan object
#: across repeated executions is sound and keeps the runtime's
#: identity-keyed lowering cache hot.
PLAN_CACHE_SIZE = 256


class _LruCache:
    """Least-recently-used map with hit/miss/eviction counters.

    Backs the per-connection prepared-plan cache.  A ``get`` refreshes
    recency; ``put`` is insert-if-absent (first build wins under races)
    and evicts the least recently *used* entry when full — unlike the
    FIFO this replaces, a hot plan is never evicted by a stream of
    one-off queries.  Callers provide their own locking.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """The cached entry (refreshed as most-recent), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, entry):
        """Insert *entry* unless *key* is already present; returns the
        canonical (cached) entry either way."""
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = entry
        return entry

    def stats(self):
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

#: Valid buffer-pool protocols for :meth:`Session.query`.
_MODES = (None, "current", "cold", "hot")


def classify_query(text):
    """``"benchmark"`` | ``"sparql"`` | ``"sql"`` for a query string.

    Benchmark names are the paper's ``q1``..``q8`` / ``q2*``..``q6*``;
    anything containing ``{`` is treated as SPARQL; everything else is
    handed to the SQL front-end.  (The same dispatch the profiler has
    always used.)
    """
    if not isinstance(text, str):
        raise ReproError(
            f"query must be a string, got {type(text).__name__}; "
            "use Session.solve() for basic graph patterns"
        )
    if text in ALL_QUERY_NAMES:
        return "benchmark"
    if "{" in text:
        return "sparql"
    return "sql"


class Result:
    """The outcome of one :meth:`Session.query` call.

    Attributes
    ----------
    query / kind:
        The submitted text and its classification
        (``"sql"`` | ``"sparql"`` | ``"benchmark"``).
    columns:
        Output column (or SPARQL variable) names, in order.
    rows:
        Decoded row tuples in *columns* order.
    n_rows:
        Result cardinality — equals ``len(rows)`` except for SPARQL
        queries projecting no variables (fully-bound patterns), where
        each match is an empty binding.
    cost:
        The **simulated** :class:`~repro.engine.clock.QueryTiming` — the
        deterministic quantity the paper's tables compare.  Byte-identical
        across runs of the same store state and query sequence.
    profile:
        A :class:`~repro.observe.profiler.QueryProfile` when the query ran
        with ``profile=True``, else ``None``.
    """

    __slots__ = ("query", "kind", "columns", "rows", "n_rows", "cost",
                 "profile")

    def __init__(self, query, kind, columns, rows, cost, n_rows=None,
                 profile=None):
        self.query = query
        self.kind = kind
        self.columns = list(columns)
        self.rows = rows
        self.n_rows = len(rows) if n_rows is None else n_rows
        self.cost = cost
        self.profile = profile

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return (
            f"Result({self.kind} {self.query!r}, {self.n_rows} row(s), "
            f"real {self.cost.real_seconds:.6f}s)"
        )

    def bindings(self):
        """Rows as a list of ``{variable: value}`` dicts (SPARQL shape)."""
        if not self.columns:
            return [{} for _ in range(self.n_rows)]
        return [dict(zip(self.columns, row)) for row in self.rows]

    def cost_dict(self):
        """The simulated cost as a plain JSON-ready dict."""
        t = self.cost
        return {
            "real_seconds": t.real_seconds,
            "user_seconds": t.user_seconds,
            "seek_seconds": t.seek_seconds,
            "transfer_seconds": t.transfer_seconds,
            "bytes_read": t.bytes_read,
            "io_requests": t.io_requests,
        }

    def to_dict(self):
        """JSON-ready document (the server's wire format for one query)."""
        return {
            "query": self.query,
            "kind": self.kind,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "n_rows": self.n_rows,
            "cost": self.cost_dict(),
        }


class Session:
    """A serialized query stream over a :class:`Connection`.

    Sessions are cheap (no per-session engine state); what they add is
    per-session defaults and a close() boundary.  All sessions of one
    connection share the engine, catalog, and buffer pool, and execution
    is serialized through the connection's lock — concurrent sessions
    interleave at query granularity, which is what makes buffer-pool
    contention observable in the server.
    """

    def __init__(self, connection, default_timeout=None, lint=None,
                 session_id=None):
        self.connection = connection
        self.default_timeout = default_timeout
        self.lint = lint
        self.session_id = session_id
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def close(self):
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @property
    def closed(self):
        return self._closed

    def _check_open(self):
        if self._closed:
            raise SessionClosed("session is closed")
        return self.connection._check_open()

    # -- querying -------------------------------------------------------

    def query(self, text, *, timeout=None, lint=None, mode=None,
              optimize=False, scope=None, profile=False, workers=None):
        """Run one query; returns a :class:`Result`.

        Parameters
        ----------
        text:
            SQL, SPARQL, or a benchmark query name (``q1``..``q8``,
            ``q2*``..``q6*``) — see :func:`classify_query`.
        timeout:
            Seconds of *wall clock* this query may run before cooperative
            cancellation; ``None`` uses the session default.  On expiry
            :class:`~repro.errors.QueryTimeout` is raised and the shared
            engine state stays consistent.
        lint:
            Per-call lint mode (``"off"`` / ``"warn"`` / ``"strict"``)
            applied on top of the plan built by the front-end; ``None``
            uses the session default (which defaults to the global
            ``REPRO_LINT`` behaviour of the front-ends).
        mode:
            Buffer-pool protocol: ``None``/``"current"`` runs against the
            pool as it stands (server semantics), ``"cold"`` clears the
            pool first, ``"hot"`` performs one unobserved warm-up run
            (the paper's protocols).
        optimize:
            Run the cost-based join-order optimizer over SQL plans.
        scope:
            Benchmark-query property scope override (as in
            :func:`repro.queries.build_query`).
        profile:
            Capture the full EXPLAIN ANALYZE profile; available on
            ``result.profile``.  Simulated costs are unaffected.
        workers:
            Per-query degree-of-parallelism cap.  Clamps the engine's
            configured morsel parallelism *down* for this query (it can
            never raise it); ``None`` runs at the engine's setting.
            Results and simulated costs are identical at any value.
        """
        self._check_open()
        if mode not in _MODES:
            raise ReproError(
                f"unknown mode {mode!r}; expected one of {_MODES}"
            )
        effective_timeout = (
            timeout if timeout is not None else self.default_timeout
        )
        effective_lint = lint if lint is not None else self.lint
        connection = self.connection
        kind, plan, columns = connection._plan_for(
            text, optimize=optimize, scope=scope
        )
        if effective_lint is not None:
            from repro.analysis import plan_lint

            plan_lint.check_plan(plan, where=f"api:{kind}",
                                 mode=effective_lint)
        relation, timing, query_profile = connection._execute(
            plan, timeout=effective_timeout, mode=mode,
            profile=profile, query=text, workers=workers,
        )
        n_rows = relation.n_rows
        rows = relation.decoded_tuples(
            connection.store.catalog.dictionary, order=columns
        )
        return Result(
            query=text, kind=kind, columns=columns, rows=rows,
            cost=timing, n_rows=n_rows, profile=query_profile,
        )

    def solve(self, patterns, projection=None, *, timeout=None):
        """Evaluate a basic graph pattern; returns binding dicts.

        The BGP equivalent of :meth:`query` — patterns are ``(s, p, o)``
        triples of constants and :class:`~repro.core.store.Var` terms.
        """
        self._check_open()
        from repro.core.bgp import bgp_plan

        connection = self.connection
        plan, names = bgp_plan(
            connection.store.catalog, patterns, projection
        )
        effective_timeout = (
            timeout if timeout is not None else self.default_timeout
        )
        relation, _timing, _ = connection._execute(
            plan, timeout=effective_timeout, mode=None,
            profile=False, query="<bgp>",
        )
        if not names:
            return [{} for _ in range(relation.n_rows)]
        rows = relation.decoded_tuples(
            connection.store.catalog.dictionary, order=names
        )
        return [dict(zip(names, row)) for row in rows]

    def profile(self, text, mode="cold", scope=None):
        """EXPLAIN ANALYZE *text* under the benchmark protocol; returns a
        :class:`~repro.observe.profiler.QueryProfile` (the CLI ``repro
        profile`` verb goes through here)."""
        result = self.query(text, mode=mode, scope=scope, profile=True)
        return result.profile

    def explain(self, text, physical=False, scope=None):
        """Render the logical (and optionally physical) plan for *text*."""
        self._check_open()
        from repro.plan.render import render_physical_plan, render_plan

        connection = self.connection
        _kind, plan, _columns = connection._plan_for(text, scope=scope)
        rendered = render_plan(plan)
        if physical:
            with connection._exec_lock:
                lowered = connection.store.engine.lower(plan)
            rendered += "\n\nphysical plan:\n" + render_physical_plan(lowered)
        return rendered


class Connection:
    """One deployed store: engine + storage scheme + shared buffer pool.

    Build one with :func:`connect` (or wrap an existing
    :class:`~repro.core.store.RDFStore`).  Thread-safe: sessions may be
    driven from multiple threads; execution serializes on an internal
    lock so the single-threaded simulated engine below is never
    re-entered, while the buffer pool carries state *across* the
    interleaved queries — the contention the server measures.
    """

    def __init__(self, store):
        if not isinstance(store, RDFStore):
            raise ReproError(
                f"Connection wraps an RDFStore, got {type(store).__name__}"
            )
        self.store = store
        self._exec_lock = threading.RLock()
        self._plan_lock = threading.Lock()
        # cache key -> (kind, plan, columns)
        self._plans = _LruCache(PLAN_CACHE_SIZE)
        self._closed = False
        self._session_counter = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def engine_kind(self):
        return self.store.engine_kind

    @property
    def scheme(self):
        return self.store.scheme

    def close(self):
        """Close the connection; subsequent queries raise
        :class:`SessionClosed`.  (The simulated store has no external
        resources to release — closing is a correctness boundary.)"""
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @property
    def closed(self):
        return self._closed

    def _check_open(self):
        if self._closed:
            raise SessionClosed("connection is closed")
        return self

    # -- sessions -------------------------------------------------------

    def session(self, default_timeout=None, lint=None):
        """Open a :class:`Session` (usable as a context manager)."""
        self._check_open()
        self._session_counter += 1
        return Session(
            self, default_timeout=default_timeout, lint=lint,
            session_id=self._session_counter,
        )

    def query(self, text, **kwargs):
        """One-shot convenience: ``connection.session().query(...)``."""
        return self.session().query(text, **kwargs)

    def make_cold(self):
        """Clear the shared buffer pool (simulated server restart)."""
        with self._exec_lock:
            self.store.make_cold()

    # -- planning -------------------------------------------------------

    def _plan_for(self, text, optimize=False, scope=None):
        """(kind, plan, output columns) for *text*, served from the
        prepared-plan cache.  Plans are immutable, so cached plan objects
        are shared across sessions and executions."""
        kind = classify_query(text)
        key = (kind, text, bool(optimize), scope)
        with self._plan_lock:
            cached = self._plans.get(key)
            if cached is not None:
                return cached
        entry = self._build_plan(kind, text, optimize, scope)
        with self._plan_lock:
            return self._plans.put(key, entry)

    def plan_cache_stats(self):
        """Prepared-plan cache counters: size, capacity, hits, misses,
        evictions.  Exposed through ``/v1/stats`` and the Prometheus
        exporter of the query server."""
        with self._plan_lock:
            return self._plans.stats()

    def _build_plan(self, kind, text, optimize, scope):
        catalog = self.store.catalog
        if kind == "benchmark":
            plan = build_query(catalog, text, scope=scope)
            return kind, plan, plan.output_columns()
        if kind == "sparql":
            from repro.sparql import parse_sparql
            from repro.sparql.executor import sparql_plan

            plan, names = sparql_plan(catalog, parse_sparql(text))
            return kind, plan, list(names)
        from repro.sql.planner import plan_sql

        plan = plan_sql(text, catalog)
        if optimize:
            from repro.plan.optimizer import (
                engine_stats_provider,
                optimize_joins,
            )

            plan = optimize_joins(
                plan, engine_stats_provider(self.store.engine)
            )
        return kind, plan, plan.output_columns()

    # -- execution ------------------------------------------------------

    def _execute(self, plan, timeout=None, mode=None, profile=False,
                 query="", workers=None):
        """Run *plan* under the execution lock with optional cooperative
        timeout; returns ``(relation, timing, profile_or_none)``.

        *workers*, when given, installs a per-query degree-of-parallelism
        clamp on the runtime for the duration of this execution (the
        server's admission path sets it from the request).
        """
        engine = self.store.engine
        runtime = engine.executor() if hasattr(engine, "executor") else None
        token = timer = None
        if workers is not None and runtime is None:
            workers = None  # engines without a runtime are always serial
        if timeout is not None:
            if timeout <= 0:
                raise QueryTimeout(
                    f"query exceeded timeout of {timeout}s (never started)"
                )
            if runtime is None:
                raise ReproError(
                    f"engine {engine.kind!r} does not support cooperative "
                    "timeouts (no unified runtime)"
                )
            token = CancellationToken().bind()
            timer = threading.Timer(
                timeout, token.cancel, kwargs={"reason": "deadline exceeded"}
            )
            timer.daemon = True
        with self._exec_lock:
            self._check_open()
            try:
                if workers is not None:
                    runtime.dop_override = int(workers)
                if token is not None:
                    runtime.cancel_token = token
                    timer.start()
                if profile:
                    from repro.observe.profiler import profile_plan

                    query_profile = profile_plan(
                        engine, plan,
                        mode=mode if mode is not None else "current",
                        query=query,
                    )
                    return (
                        query_profile.relation, query_profile.timing,
                        query_profile,
                    )
                if mode == "cold":
                    engine.make_cold()
                elif mode == "hot":
                    engine.run(plan)  # unobserved warm-up
                relation, timing = engine.run(plan)
                return relation, timing, None
            except QueryCancelled as exc:
                if token is not None and token.is_set():
                    raise QueryTimeout(
                        f"query exceeded timeout of {timeout}s"
                    ) from exc
                raise
            finally:
                if workers is not None:
                    runtime.dop_override = None
                if token is not None:
                    timer.cancel()
                    runtime.cancel_token = None


def connect(source=None, *, triples=None, ntriples=None, path=None,
            store=None, engine="column", scheme="vertical",
            clustering="PSO", interesting_properties=None,
            engine_options=None):
    """Open a :class:`Connection` to a store deployment.

    Exactly one data source may be given:

    * ``store=`` — wrap an existing :class:`~repro.core.store.RDFStore`,
    * ``triples=`` — an iterable of triples (or 3-tuples of strings),
    * ``ntriples=`` — N-Triples text,
    * ``path=`` — an N-Triples file (``.gz`` supported),
    * positional *source* — convenience dispatch: an ``RDFStore`` is
      wrapped, a string is treated as a path, any other iterable as
      triples.

    The remaining keyword arguments mirror :class:`RDFStore`:
    *engine* (``"column"`` | ``"row"``), *scheme* (``"vertical"`` |
    ``"triple"``), *clustering*, *interesting_properties*,
    *engine_options*.
    """
    if source is not None:
        if isinstance(source, RDFStore):
            store = source
        elif isinstance(source, str):
            path = source
        else:
            triples = source
    given = [x for x in (store, triples, ntriples, path) if x is not None]
    if len(given) != 1:
        raise ReproError(
            "connect() needs exactly one of store=, triples=, ntriples=, "
            f"path= (got {len(given)})"
        )
    if store is not None:
        return Connection(store)
    options = dict(
        engine=engine, scheme=scheme, clustering=clustering,
        interesting_properties=interesting_properties,
        engine_options=engine_options,
    )
    if triples is not None:
        built = RDFStore.from_triples(triples, **options)
    elif ntriples is not None:
        built = RDFStore.from_ntriples(ntriples, **options)
    else:
        built = RDFStore.from_file(path, **options)
    return Connection(built)
