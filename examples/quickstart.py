"""Quickstart: load RDF data, pick a storage scheme, and query it.

Run with::

    python examples/quickstart.py
"""

from repro import RDFStore, Var

CATALOG = """
# A miniature library catalog in N-Triples.
<book/1> <type> <Text> .
<book/1> <language> <language/iso639-2b/fre> .
<book/1> <title> "Le Petit Prince" .
<book/2> <type> <Text> .
<book/2> <language> <language/iso639-2b/eng> .
<book/2> <title> "Moby Dick" .
<map/1> <type> <Map> .
<map/1> <title> "Atlas Maior" .
<collection/1> <records> <book/1> .
<collection/1> <records> <map/1> .
<collection/1> <type> <Collection> .
"""


def main():
    # The vertically-partitioned scheme on the column store: the
    # configuration the VLDB 2007 paper proposed and this paper re-examines.
    store = RDFStore.from_ntriples(CATALOG, engine="column", scheme="vertical")
    print(f"loaded {store.n_triples} triples into "
          f"{len(store.table_names())} tables "
          f"({store.database_bytes()} simulated bytes on disk)\n")

    # 1. Simple pattern matching.
    print("Texts in the catalog:")
    for s, p, o in store.match(p="<type>", o="<Text>"):
        print(f"  {s}")

    # 2. A basic graph pattern: French-language texts with their titles
    #    (join pattern A — two patterns sharing their subject).
    print("\nFrench texts:")
    for binding in store.solve(
        [
            (Var("book"), "<type>", "<Text>"),
            (Var("book"), "<language>", "<language/iso639-2b/fre>"),
            (Var("book"), "<title>", Var("title")),
        ]
    ):
        print(f"  {binding['book']}: {binding['title']}")

    # 3. An object-subject join (pattern C): what do collections record?
    print("\nRecorded resources and their types:")
    for binding in store.solve(
        [
            (Var("c"), "<records>", Var("r")),
            (Var("r"), "<type>", Var("t")),
        ]
    ):
        print(f"  {binding['c']} -> {binding['r']} ({binding['t']})")

    # 4. The same data under the triple-store scheme, queried with SQL.
    triple_store = RDFStore.from_ntriples(
        CATALOG, engine="column", scheme="triple", clustering="PSO"
    )
    print("\nType histogram via SQL on the triple store:")
    for obj, count in sorted(
        triple_store.sql(
            "SELECT A.obj, count(*) FROM triples AS A "
            "WHERE A.prop = '<type>' GROUP BY A.obj"
        )
    ):
        print(f"  {obj}: {count}")

    # 5. Look at the logical plan an engine actually runs.
    print("\nPlan for the French-texts BGP (vertically-partitioned):")
    print(
        store.explain(
            [
                (Var("book"), "<type>", "<Text>"),
                (Var("book"), "<language>", "<language/iso639-2b/fre>"),
            ]
        )
    )


if __name__ == "__main__":
    main()
