"""Tour of the library's beyond-the-paper extensions.

1. SPARQL over any engine x scheme,
2. SQL with ORDER BY / LIMIT (order-preserving dictionary encoding),
3. the property-table scheme (the third layout of the debate),
4. incremental maintenance and the schema-change asymmetry.

Run with::

    python examples/extensions_tour.py
"""

from repro import RDFStore
from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.model.triple import Triple
from repro.queries import build_query
from repro.storage import (
    build_property_table_store,
    build_triple_store,
    build_vertical_store,
    insert_triples,
)

CATALOG = """
<book/1> <type> <Text> .
<book/1> <language> <fre> .
<book/1> <pages> "096" .
<book/2> <type> <Text> .
<book/2> <language> <eng> .
<book/2> <pages> "635" .
<book/3> <type> <Text> .
<book/3> <language> <eng> .
<book/3> <pages> "310" .
"""


def sparql_demo():
    print("=== SPARQL ===")
    store = RDFStore.from_ntriples(CATALOG, scheme="vertical")
    bindings = store.sparql("""
        SELECT ?book ?pages WHERE {
            ?book <type> <Text> .
            ?book <pages> ?pages .
            FILTER(?book != <book/2>)
        } LIMIT 5
    """)
    for b in bindings:
        print(f"  {b['book']}: {b['pages']} pages")


def order_by_demo():
    print("\n=== SQL ORDER BY / LIMIT ===")
    store = RDFStore.from_ntriples(CATALOG, scheme="triple")
    rows = store.sql(
        "SELECT A.subj, A.obj FROM triples AS A "
        "WHERE A.prop = '<pages>' ORDER BY A.obj DESC LIMIT 2"
    )
    print("  two longest books (string order via order-preserving oids):")
    for subj, pages in rows:
        print(f"    {subj}: {pages}")


def property_table_demo():
    print("\n=== Property-table scheme (the layout the paper excluded) ===")
    dataset = generate_barton(n_triples=20_000, n_properties=40, seed=7)
    engine = ColumnStoreEngine()
    catalog = build_property_table_store(
        engine, dataset.triples, dataset.interesting_properties
    )
    wide = engine.table(catalog.property_table_name)
    print(f"  wide table: {wide.n_rows} subjects x "
          f"{len(wide.column_names()) - 1} property columns")
    leftover = engine.table(catalog.triples_table)
    print(f"  leftover triples (multi-valued + unclustered): "
          f"{leftover.n_rows}")
    plan = build_query(catalog, "q1")
    relation, timing = engine.run(plan)
    print(f"  q1 -> {relation.n_rows} classes in "
          f"{timing.real_seconds * 1e3:.2f} simulated ms")


def maintenance_demo():
    print("\n=== Incremental maintenance (Section 4.2, made executable) ===")
    dataset = generate_barton(n_triples=20_000, n_properties=40, seed=7)
    batch = [
        Triple("<entity/3>", "<type>", "<Text>"),
        Triple("<entity/3>", "<isbn>", '"978-0241972939"'),  # new property
    ]
    for label, build in (
        ("triple-store", build_triple_store),
        ("vertical", build_vertical_store),
    ):
        engine = ColumnStoreEngine()
        catalog = build(
            engine, dataset.triples, dataset.interesting_properties
        )
        catalog, report = insert_triples(engine, catalog, batch)
        print(
            f"  {label:>12}: rebuilt {len(report.tables_rebuilt)} table(s), "
            f"created {len(report.tables_created)}, "
            f"rewrote {report.bytes_rewritten} bytes, "
            f"generated queries stale: {report.plans_invalidated}"
        )


if __name__ == "__main__":
    sparql_demo()
    order_by_demo()
    property_table_demo()
    maintenance_demo()
