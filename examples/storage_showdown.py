"""Storage showdown: the paper's core experiment in miniature.

Generates a Barton-like dataset, deploys the full system grid of Tables 6/7
(row store and column store, each hosting the triple-store clustered SPO or
PSO and the vertically-partitioned scheme, plus the C-Store replica), runs
all 12 benchmark queries cold and hot, and prints the two tables with their
G / G* / G*÷G summaries — the "black swan" hunt of Section 4.3.

Run with::

    python examples/storage_showdown.py [n_triples]
"""

import sys

from repro.bench.experiments import experiment_table6, experiment_table7
from repro.data import generate_barton


def main(n_triples=60_000):
    print(f"generating a Barton-like dataset ({n_triples} triples, "
          "222 properties)...")
    dataset = generate_barton(n_triples=n_triples, seed=42)
    print(f"  -> {len(dataset.triples)} triples, "
          f"{len(dataset.properties)} properties, "
          f"{dataset.n_entities} entities\n")

    print("deploying 7 system configurations and running 12 queries, "
          "cold and hot (times are scaled seconds, comparable with the "
          "paper's Tables 6/7)...\n")

    cold = experiment_table6(dataset)
    print(cold.render())
    print()
    hot = experiment_table7(dataset)
    print(hot.render())

    # Point at the swans.
    print("\nblack swans spotted:")
    pso_cells, pso = cold.measured[("DBX", "triple", "PSO")]
    vert_cells, vert = cold.measured[("DBX", "vert", "SO")]
    print(
        "  row store: with PSO clustering the triple-store's G* "
        f"({pso['Gstar_real']:.2f}s) beats the vertically-partitioned "
        f"G* ({vert['Gstar_real']:.2f}s) — the paper's counterexample to "
        "the VLDB 2007 claim."
    )
    m_pso_cells, m_pso = cold.measured[("MonetDB", "triple", "PSO")]
    m_vert_cells, m_vert = cold.measured[("MonetDB", "vert", "SO")]
    swans = [
        q for q in ("q2*", "q3*", "q6*", "q8")
        if m_pso_cells[q].real < m_vert_cells[q].real
    ]
    print(
        "  column store: vertical partitioning wins the restricted "
        f"benchmark (G {m_vert['G_real']:.2f}s vs {m_pso['G_real']:.2f}s) "
        f"but loses {', '.join(swans)} to the PSO triple-store."
    )
    print(
        "  scalability: G*/G grows to "
        f"{m_vert['ratio_real']:.2f} for vertical partitioning vs "
        f"{m_pso['ratio_real']:.2f} for the triple-store."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60_000)
