"""SQL workbench: the appendix queries and the "Perl script".

Demonstrates the SQL pipeline end to end: the paper's appendix SQL runs
verbatim against a triple store; the vertically-partitioned SQL is
*generated* from it (the paper used a Perl script because SQL cannot
iterate over tables in a FROM clause), and both return identical answers.

Run with::

    python examples/sql_workbench.py
"""

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.sql import APPENDIX_SQL, generate_vertical_sql, plan_sql
from repro.storage import build_triple_store, build_vertical_store


def main():
    dataset = generate_barton(n_triples=20_000, n_properties=40, seed=7)

    triple_engine = ColumnStoreEngine()
    triple_catalog = build_triple_store(
        triple_engine, dataset.triples, dataset.interesting_properties,
        clustering="PSO",
    )
    vertical_engine = ColumnStoreEngine()
    vertical_catalog = build_vertical_store(
        vertical_engine, dataset.triples, dataset.interesting_properties,
    )

    # --- 1. The appendix SQL, verbatim, on the triple store. ------------
    q2 = APPENDIX_SQL["q2"]
    print("q2, as printed in the paper's appendix:")
    print(q2)

    plan = plan_sql(q2, triple_catalog)
    relation = triple_engine.execute(plan)
    triple_rows = sorted(
        relation.decoded_tuples(
            triple_catalog.dictionary, order=plan.output_columns()
        )
    )
    print(f"-> {len(triple_rows)} (property, count) groups; top 5:")
    for prop, count in sorted(triple_rows, key=lambda r: -r[1])[:5]:
        print(f"   {prop}: {count}")

    # --- 2. Generate the vertically-partitioned SQL. --------------------
    vertical_sql = generate_vertical_sql(
        q2, vertical_catalog, properties=dataset.interesting_properties
    )
    n_unions = vertical_sql.upper().count("UNION ALL")
    print(f"\ngenerated vertically-partitioned q2: {len(vertical_sql)} "
          f"characters, {n_unions + 1} union branches")
    print("first lines:")
    for line in vertical_sql.splitlines()[:9]:
        print(f"   {line}")
    print("   ...")

    plan = plan_sql(vertical_sql, vertical_catalog)
    relation = vertical_engine.execute(plan)
    vertical_rows = sorted(
        relation.decoded_tuples(
            vertical_catalog.dictionary, order=plan.output_columns()
        )
    )
    assert vertical_rows == triple_rows
    print("\nboth schemes return identical answers "
          f"({len(vertical_rows)} rows)")

    # --- 3. The full-scale variant: the statement explodes. -------------
    full = generate_vertical_sql(APPENDIX_SQL["q2*"], vertical_catalog)
    print(
        f"\nq2* over all {len(vertical_catalog.all_properties)} properties: "
        f"{len(full)} characters of SQL "
        "(the paper: 'queries grow to a size that seriously challenges "
        "the optimizer')"
    )


if __name__ == "__main__":
    main()
