"""Repeating the C-Store experiment (the paper's Section 3).

Loads the C-Store replica with the 28-property vertically-partitioned data,
re-runs q1-q7 cold and hot on both machine profiles, prints the Table 4 /
Table 5 data, and demonstrates the artifact's limitations: q8 and the
full-scale variants simply do not exist in it.

Run with::

    python examples/cstore_repetition.py
"""

from repro.bench.experiments import (
    experiment_figure5,
    experiment_table4,
    experiment_table5,
)
from repro.cstore import CStoreEngine
from repro.data import generate_barton
from repro.errors import UnsupportedOperationError


def main():
    dataset = generate_barton(n_triples=50_000, seed=42)

    print(experiment_table4(dataset).render())
    print()
    print(experiment_table5(dataset).render())
    print()
    for result in experiment_figure5(dataset):
        print(result.render())
        print()

    # The extensibility wall the paper hit.
    engine = CStoreEngine().load_vertical(
        dataset.triples, dataset.interesting_properties
    )
    print("attempting to extend the artifact:")
    for attempt in ("q8", "q2*"):
        try:
            engine.run(attempt)
        except UnsupportedOperationError as error:
            print(f"  {attempt}: {error}")
    try:
        engine.create_table("triples", {})
    except UnsupportedOperationError as error:
        print(f"  triple-store DDL: {error}")


if __name__ == "__main__":
    main()
