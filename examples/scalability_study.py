"""Scalability study: how the schemes cope as properties multiply.

Reproduces the paper's Section 4.4 investigation in miniature:

1. the Figure 6 sweep — growing the number of properties the aggregation
   queries *consider* from 28 to 222,
2. the Figure 7 scale-up — splitting properties so the *dataset* has up to
   1000 of them while the triple count stays fixed.

Run with::

    python examples/scalability_study.py
"""

from repro.bench.experiments import experiment_figure6, experiment_figure7
from repro.data import generate_barton


def main():
    dataset = generate_barton(n_triples=50_000, seed=42)

    print("=== Figure 6: properties considered by the query (MonetDB) ===\n")
    for result in experiment_figure6(
        dataset, property_counts=(28, 84, 150, 222)
    ):
        print(result.render())
        triple = result.series["triple"]
        vert = result.series["vert"]
        verdict = (
            "triple-store overtakes"
            if triple[-1] < vert[-1]
            else "vertical still ahead"
        )
        print(f"  -> vert grows {vert[-1] / vert[0]:.2f}x; {verdict}\n")

    print("=== Figure 7: properties in the dataset (splitting) ===\n")
    result = experiment_figure7(
        dataset, property_counts=(222, 500, 1000)
    )
    print(result.render())
    print(
        "\nthe vertically-partitioned scheme's data-driven logical schema "
        "is the problem: every new property is another table, another "
        "union branch, another join — while the triples table just gets "
        "a different value distribution."
    )


if __name__ == "__main__":
    main()
