#!/usr/bin/env python
"""Regenerate every table and figure of the paper into one text report.

Usage::

    python scripts/make_report.py [--triples N] [--seed S] [--out FILE]

This is the programmatic twin of ``pytest benchmarks/ --benchmark-only``:
it runs all experiment drivers at the requested scale and writes a single
plain-text report (default: ``benchmarks/output/full_report.txt``), with
the measured scale factor recorded so the "scaled seconds" can be compared
against the paper's Tables 4-7.
"""

import argparse
import pathlib
import sys

from repro.bench import experiments as E
from repro.bench.systems import data_scale
from repro.data import generate_barton


def build_report(n_triples, seed):
    dataset = generate_barton(n_triples=n_triples, seed=seed)
    sections = [
        "Reproduction report — 'Column-Store Support for RDF Data "
        "Management: not all swans are white' (VLDB 2008)",
        f"dataset: {len(dataset.triples)} triples, "
        f"{len(dataset.properties)} properties, seed {seed}; "
        f"scale factor {data_scale(dataset):.6f} "
        "(times below are scaled seconds, comparable with the paper's)",
        "",
    ]

    def add(result):
        for item in result if isinstance(result, list) else [result]:
            sections.append(item.render())
            sections.append("")

    add(E.experiment_table1(dataset))
    add(E.experiment_figure1(dataset))
    add(E.experiment_table2())
    add(E.experiment_table3())
    add(E.experiment_table4(dataset))
    add(E.experiment_table5(dataset))
    add(E.experiment_figure5(dataset))
    add(E.experiment_table6(dataset))
    add(E.experiment_table7(dataset))
    add(E.experiment_figure6(dataset))
    add(E.experiment_figure7(dataset))
    return "\n".join(sections)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--triples", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "output" / "full_report.txt"
        ),
    )
    args = parser.parse_args(argv)

    report = build_report(args.triples, args.seed)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report + "\n")
    print(f"wrote {out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
