#!/usr/bin/env python
"""Capture the exec-parity golden document.

Runs the full engine x scheme x query sweep through the current execution
path and writes ``tests/data/exec_parity_goldens.json``.  The committed
goldens were captured from the legacy per-engine executors immediately
before the unified execution layer replaced them; re-run this script only
when an intentional cost-model change invalidates them (and say so in the
commit that regenerates the file).

Usage::

    PYTHONPATH=src python scripts/capture_exec_goldens.py [output.json]
"""

import json
import sys
from pathlib import Path

from repro.exec.parity import parity_sweep


def main(argv):
    default = (
        Path(__file__).resolve().parent.parent
        / "tests" / "data" / "exec_parity_goldens.json"
    )
    out = Path(argv[1]) if len(argv) > 1 else default
    document = parity_sweep()
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    n_entries = sum(
        len(queries) for queries in document["cells"].values()
    )
    print(f"wrote {out} ({len(document['cells'])} cells, "
          f"{n_entries} query entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
