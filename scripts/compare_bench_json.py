#!/usr/bin/env python
"""Compare two benchmark JSON documents, ignoring wall-clock metadata.

Usage::

    python scripts/compare_bench_json.py serial.json parallel.json

The documents are the ``repro bench --json`` output (a list of experiment
results).  Simulated timings, tables and figure series must match exactly —
only the ``meta`` block (wall-clock per cell, worker count) is allowed to
differ between runs, so it is stripped before comparison.  Exit status 0
means identical, 1 means a divergence (printed), 2 means usage error.
"""

import json
import sys


def strip_meta(document):
    """Drop every ``meta`` key — the only run-dependent part of a result."""
    if isinstance(document, dict):
        return {
            key: strip_meta(value)
            for key, value in document.items()
            if key != "meta"
        }
    if isinstance(document, list):
        return [strip_meta(item) for item in document]
    return document


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        left = strip_meta(json.load(handle))
    with open(argv[2]) as handle:
        right = strip_meta(json.load(handle))
    if left == right:
        print(f"identical (ignoring meta): {argv[1]} == {argv[2]}")
        return 0
    left_names = [r.get("name") for r in left] if isinstance(left, list) else []
    right_names = (
        [r.get("name") for r in right] if isinstance(right, list) else []
    )
    print(f"MISMATCH between {argv[1]} and {argv[2]}", file=sys.stderr)
    if left_names != right_names:
        print(f"  experiments: {left_names} vs {right_names}", file=sys.stderr)
    elif isinstance(left, list):
        for one, two in zip(left, right):
            if one != two:
                keys = [
                    key for key in one
                    if one.get(key) != two.get(key)
                ]
                print(
                    f"  {one.get('name')}: differing keys {keys}",
                    file=sys.stderr,
                )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
