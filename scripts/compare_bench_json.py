#!/usr/bin/env python
"""Compare two benchmark JSON documents under the regression policies.

Usage::

    python scripts/compare_bench_json.py serial.json parallel.json
    python scripts/compare_bench_json.py --wall-gate --wall-tolerance 2.0 \\
        baseline.json current.json
    python scripts/compare_bench_json.py --json old.json new.json

The documents are the ``repro bench --json`` output (a list of experiment
results).  The comparison delegates to
:mod:`repro.observe.regression`: simulated timings, tables and figure
series must be **byte-identical** after stripping the ``meta`` blocks
(wall-clock per cell, worker count); the summed wall-clock is reported
informationally by default, or gated at ``--wall-tolerance`` (default
1.5x) with ``--wall-gate``.  ``--json`` emits the machine-readable diff
instead of text.

Exit status 0 means no gate tripped, 1 means a regression (printed),
2 means usage or input error.
"""

import argparse
import json
import os
import sys

# Runnable from a checkout without an installed package.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.observe.regression import (  # noqa: E402
    DEFAULT_WALL_TOLERANCE,
    compare_bench_documents,
)


def build_parser():
    parser = argparse.ArgumentParser(
        description="Compare two 'repro bench --json' documents: simulated "
                    "results byte-identical, wall-clock under tolerance.",
    )
    parser.add_argument("baseline", help="baseline bench JSON")
    parser.add_argument("current", help="current bench JSON")
    parser.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
        help="allowed wall-clock slowdown ratio (default %(default)s)",
    )
    parser.add_argument(
        "--wall-gate", action="store_true",
        help="fail when wall-clock exceeds the tolerance (default: "
             "informational only, matching the old equality-only script)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the comparison as a JSON document on stdout",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.current) as handle:
            current = json.load(handle)
        comparison = compare_bench_documents(
            baseline, current,
            name=f"{args.baseline} vs {args.current}",
            wall_tolerance=args.wall_tolerance,
            wall_gate=args.wall_gate,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        stream = sys.stdout if comparison.ok else sys.stderr
        print(comparison.render(), file=stream)
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
